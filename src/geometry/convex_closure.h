#ifndef LCDB_GEOMETRY_CONVEX_CLOSURE_H_
#define LCDB_GEOMETRY_CONVEX_CLOSURE_H_

#include "constraint/dnf_formula.h"
#include "geometry/generator_region.h"
#include "util/status.h"

namespace lcdb {

/// The *closed* convex hull of a semilinear set, as a quantifier-free
/// formula (a single conjunction — hulls are convex).
///
/// This implements the operator behind the paper's Section 8 ("ongoing
/// work"): an extension of the region logics by a convex-closure operator
/// towards capturing non-boolean PTIME queries. Closure is preserved: the
/// closed convex hull of a semilinear set is again semilinear.
///
/// Algorithm (reusing the library's own substrates):
///  1. per disjunct, take the topological closure and harvest a V-style
///     description: its vertices, clipped by the Appendix A cube when the
///     polyhedron has few/no vertices, plus generators of its recession
///     cone (vertices of cone ∩ unit box, a classic trick);
///  2. pool all generators, prune non-extreme ones with the LP oracle;
///  3. convert the generator region back to constraints with the
///     Fourier–Motzkin engine (GeneratorRegion::ToConjunction).
///
/// The hull of the topological closure is taken (hence *closed* convex
/// hull); the paper's conv(P) of Section 3 may be partially open for open
/// inputs — the distinction is documented in DESIGN.md.
///
/// Returns False for an empty input.
Result<DnfFormula> ConvexClosure(const DnfFormula& f);

/// The pooled generator description computed by step 1-2 (exposed for
/// tests and for callers that want the V-representation itself).
Result<GeneratorRegion> ConvexClosureGenerators(const DnfFormula& f);

}  // namespace lcdb

#endif  // LCDB_GEOMETRY_CONVEX_CLOSURE_H_
