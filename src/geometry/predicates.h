#ifndef LCDB_GEOMETRY_PREDICATES_H_
#define LCDB_GEOMETRY_PREDICATES_H_

#include <vector>

#include "constraint/conjunction.h"
#include "geometry/generator_region.h"

namespace lcdb {

/// The relative interior of the polyhedron defined by `poly` (interior with
/// respect to its affine support — the paper's convention, Section 3).
/// Implicit equalities (inequality atoms that hold with equality on all of
/// the polyhedron) are detected with the LP oracle and turned into
/// equalities; the remaining inequalities become strict.
Conjunction RelativeInterior(const Conjunction& poly);

/// True iff the full ray { p + a*dir : a >= 0 } lies in the topological
/// closure of `poly` — the membership test behind Appendix A's up(ψ).
/// Decided exactly: p must satisfy the closure, and dir must lie in its
/// recession cone (a.dir <= 0 for every <=-atom, a.dir = 0 for equalities).
bool RayInClosure(const Vec& p, const Vec& dir, const Conjunction& poly);

/// The maximal absolute value of any coordinate among `points`
/// (zero if empty).
Rational MaxAbsCoordinate(const std::vector<Vec>& points);

/// The 2d facet hyperplane atoms x_i = ±2(c+1) of Appendix A's cube(ψ).
std::vector<LinearAtom> CubeAtoms(size_t dim, const Rational& c);

/// The open cube interior constraints -2(c+1) < x_i < 2(c+1) of icube(ψ).
std::vector<LinearAtom> InnerCubeAtoms(size_t dim, const Rational& c);

/// True iff `poly` is bounded per Appendix A's test: every cube facet
/// hyperplane has empty intersection with poly... relaxed here to the exact
/// geometric test (the closure is bounded in every coordinate), which agrees
/// with the cube test for the paper's constructions.
bool IsBoundedPolyhedron(const Conjunction& poly);

}  // namespace lcdb

#endif  // LCDB_GEOMETRY_PREDICATES_H_
