#include "geometry/convex_closure.h"

#include <algorithm>

#include "engine/kernel.h"
#include "geometry/predicates.h"
#include "geometry/vertex_enumeration.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// Generators (points + ray directions) of one closed polyhedron.
struct Generators {
  std::vector<Vec> points;
  std::vector<Vec> rays;
};

/// V-style description of the closure of one disjunct: vertices of the
/// cube-clipped polyhedron plus recession-cone generators.
Generators DisjunctGenerators(const Conjunction& poly) {
  Generators out;
  const size_t d = poly.num_vars();
  const Conjunction closure = poly.ClosureConjunction();

  // Coordinate bound c as in Appendix A (falls back to axis intersections
  // when the polyhedron has no vertices).
  std::vector<Vec> vertices = VerticesOf(closure);
  Rational c = MaxAbsCoordinate(vertices);
  if (vertices.empty()) {
    std::vector<Hyperplane> planes = HyperplanesOf(closure);
    for (size_t i = 0; i < d; ++i) {
      Vec row(d);
      row[i] = Rational(1);
      planes.push_back(
          Hyperplane::FromAtom(LinearAtom(row, RelOp::kEq, Rational(0))));
    }
    std::sort(planes.begin(), planes.end());
    planes.erase(std::unique(planes.begin(), planes.end()), planes.end());
    c = MaxAbsCoordinate(EnumerateIntersectionPoints(planes, d));
  }

  // Clip with the *closed* cube and take all vertices: for the cube chosen
  // beyond every vertex coordinate, closure(poly) = conv(vertices of the
  // clipped polytope) + recession cone (Minkowski-Weyl with the Appendix A
  // cube construction).
  {
    std::vector<LinearAtom> clipped = closure.atoms();
    const Rational bound = (c + Rational(1)) * Rational(2);
    for (size_t i = 0; i < d; ++i) {
      Vec row(d);
      row[i] = Rational(1);
      clipped.emplace_back(row, RelOp::kLe, bound);
      clipped.emplace_back(row, RelOp::kGe, -bound);
    }
    out.points = VerticesOf(Conjunction(d, std::move(clipped)));
  }

  // Recession cone {x : A x <= 0 (rows of the closure)}; its generators are
  // the nonzero vertices of cone ∩ [-1, 1]^d.
  {
    std::vector<LinearAtom> cone;
    for (const LinearAtom& atom : closure.atoms()) {
      Vec row(d);
      for (size_t i = 0; i < d; ++i) row[i] = Rational(atom.coeffs()[i]);
      cone.emplace_back(row, atom.rel(), Rational(0));
    }
    for (size_t i = 0; i < d; ++i) {
      Vec row(d);
      row[i] = Rational(1);
      cone.emplace_back(row, RelOp::kLe, Rational(1));
      cone.emplace_back(row, RelOp::kGe, Rational(-1));
    }
    for (Vec& v : VerticesOf(Conjunction(d, std::move(cone)))) {
      if (!VecIsZero(v)) out.rays.push_back(std::move(v));
    }
  }
  return out;
}

/// Drops points inside the hull of the others and rays inside the cone of
/// the others (LP per generator), so the Fourier–Motzkin conversion sees a
/// small generator set.
void PruneGenerators(size_t d, Generators* g) {
  // Points first (their count dominates the parametric system size).
  for (size_t i = 0; i < g->points.size() && g->points.size() > 1;) {
    std::vector<Vec> rest_points;
    for (size_t j = 0; j < g->points.size(); ++j) {
      if (j != i) rest_points.push_back(g->points[j]);
    }
    GeneratorRegion rest(d, std::move(rest_points), g->rays, /*open=*/false);
    if (rest.Contains(g->points[i])) {
      g->points.erase(g->points.begin() + i);
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < g->rays.size();) {
    std::vector<Vec> rest_rays;
    for (size_t j = 0; j < g->rays.size(); ++j) {
      if (j != i) rest_rays.push_back(g->rays[j]);
    }
    // Ray r is redundant iff anchor + r stays in hull(anchor; other rays)
    // for an arbitrary anchor point... equivalently r ∈ cone(other rays):
    // test with a single-point region at the origin plus the other rays.
    GeneratorRegion cone(d, {Vec(d)}, std::move(rest_rays), /*open=*/false);
    if (cone.Contains(g->rays[i])) {
      g->rays.erase(g->rays.begin() + i);
    } else {
      ++i;
    }
  }
}

}  // namespace

Result<GeneratorRegion> ConvexClosureGenerators(const DnfFormula& f) {
  const size_t d = f.num_vars();
  Generators pooled;
  ConstraintKernel& kernel = CurrentKernel();
  for (const Conjunction& disjunct : f.disjuncts()) {
    if (!kernel.IsFeasible(disjunct)) continue;
    Generators g = DisjunctGenerators(disjunct);
    pooled.points.insert(pooled.points.end(), g.points.begin(),
                         g.points.end());
    pooled.rays.insert(pooled.rays.end(), g.rays.begin(), g.rays.end());
  }
  if (pooled.points.empty()) {
    return Status::InvalidArgument("convex closure of an empty set");
  }
  PruneGenerators(d, &pooled);
  return GeneratorRegion(d, std::move(pooled.points), std::move(pooled.rays),
                         /*open=*/false);
}

Result<DnfFormula> ConvexClosure(const DnfFormula& f) {
  if (f.IsEmpty()) return DnfFormula::False(f.num_vars());
  LCDB_ASSIGN_OR_RETURN(GeneratorRegion hull, ConvexClosureGenerators(f));
  Conjunction conj = hull.ToConjunction();
  return DnfFormula(f.num_vars(), {std::move(conj)});
}

}  // namespace lcdb
