#ifndef LCDB_ARRANGEMENT_INCIDENCE_GRAPH_H_
#define LCDB_ARRANGEMENT_INCIDENCE_GRAPH_H_

#include <string>
#include <vector>

#include "arrangement/arrangement.h"

namespace lcdb {

/// The incidence graph of an arrangement (Section 3): one proper vertex per
/// face plus two improper vertices — the virtual (-1)-dimensional face ∅
/// incident to every 0-dimensional face, and the (d+1)-dimensional face
/// A(S) that every d-dimensional face is incident to. Each proper vertex
/// stores two directed edge lists: faces incident *to* it (one dimension
/// lower, `down`) and faces it is incident to (one dimension higher, `up`).
class IncidenceGraph {
 public:
  /// Identifier of the improper bottom vertex ∅.
  static constexpr size_t kBottom = static_cast<size_t>(-1);
  /// Identifier of the improper top vertex A(S).
  static constexpr size_t kTop = static_cast<size_t>(-2);

  explicit IncidenceGraph(const Arrangement& arrangement);

  /// Proper faces of dimension one higher whose boundary contains `face`,
  /// plus kTop for d-dimensional faces.
  const std::vector<size_t>& Up(size_t face) const { return up_[face]; }
  /// Proper faces of dimension one lower contained in the boundary of
  /// `face`, plus kBottom for 0-dimensional faces.
  const std::vector<size_t>& Down(size_t face) const { return down_[face]; }

  size_t num_proper_vertices() const { return up_.size(); }
  /// Total directed edge count (both lists, improper edges included).
  size_t num_edges() const;

  /// Textual rendering of the neighbourhood of one face, in the spirit of
  /// the paper's Figure 4.
  std::string DescribeNeighbourhood(const Arrangement& arrangement,
                                    size_t face) const;

 private:
  std::vector<std::vector<size_t>> up_;
  std::vector<std::vector<size_t>> down_;
};

}  // namespace lcdb

#endif  // LCDB_ARRANGEMENT_INCIDENCE_GRAPH_H_
