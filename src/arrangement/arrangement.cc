#include "arrangement/arrangement.h"

#include "engine/kernel.h"

#include <algorithm>
#include <string>

#include "engine/governor.h"
#include "engine/trace.h"
#include "geometry/vertex_enumeration.h"
#include "linalg/gauss.h"
#include "lp/feasibility.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {

namespace {

std::string SignKey(const SignVector& sv) {
  std::string key(sv.size(), '0');
  for (size_t i = 0; i < sv.size(); ++i) {
    key[i] = sv[i] > 0 ? '+' : (sv[i] < 0 ? '-' : '0');
  }
  return key;
}

/// Working face during incremental construction.
struct PendingFace {
  SignVector sign;
  Vec witness;
  bool is_point = false;  // dimension 0 (no further splits possible)
};

}  // namespace

Arrangement Arrangement::Build(std::vector<Hyperplane> planes, size_t dim) {
  std::sort(planes.begin(), planes.end());
  planes.erase(std::unique(planes.begin(), planes.end()), planes.end());
  Arrangement arr(dim, std::move(planes));
  arr.BuildFaces();
  arr.FinalizeFaceData();
  for (size_t i = 0; i < arr.faces_.size(); ++i) {
    arr.sign_index_.emplace(SignKey(arr.faces_[i].sign), i);
  }
  return arr;
}

Arrangement Arrangement::FromFormula(const DnfFormula& formula) {
  std::vector<Hyperplane> planes;
  for (const Conjunction& conj : formula.disjuncts()) {
    for (const Hyperplane& h : HyperplanesOf(conj)) planes.push_back(h);
  }
  return Build(std::move(planes), formula.num_vars());
}

void Arrangement::BuildFaces() {
  TraceSpan build_span("arrangement.build");
  build_span.Counter("planes", planes_.size());
  // Start with the single face R^d (empty position vector).
  std::vector<PendingFace> faces;
  {
    PendingFace all;
    all.witness = Vec(dim_);
    all.is_point = dim_ == 0;
    faces.push_back(std::move(all));
  }

  // Whether the zero-set of a sign vector pins the face to a point.
  auto zero_rank_is_full = [&](const SignVector& sv) {
    Matrix rows;
    for (size_t k = 0; k < sv.size(); ++k) {
      if (sv[k] != 0) continue;
      Vec row(dim_);
      for (size_t c = 0; c < dim_; ++c) row[c] = Rational(planes_[k].coeffs()[c]);
      rows.AppendRow(row);
    }
    return rows.rows() >= dim_ && Rank(rows) == dim_;
  };

  for (size_t i = 0; i < planes_.size(); ++i) {
    const Hyperplane& h = planes_[i];
    // One span per hyperplane insertion: the face count it left behind is
    // the quantity whose growth makes construction exponential.
    TraceSpan split_span("arrangement.split");
    std::vector<PendingFace> next;
    next.reserve(faces.size() + faces.size() / 2);
    for (PendingFace& face : faces) {
      // Arrangement construction is the other input-sensitive hot spot
      // besides QE (face count is worst-case exponential in dim), so each
      // split step is a cancellation + injection site. An unwind here
      // abandons only the local `faces`/`next` vectors; the caller simply
      // never receives a half-built arrangement.
      LCDB_FAILPOINT("arrangement.split");
      GovernorCheckpoint();
      const int side = h.SideOf(face.witness);
      // The part on the witness's side always exists.
      auto keep_side = [&](int sign_value, Vec witness, bool is_point) {
        PendingFace part;
        part.sign = face.sign;
        part.sign.push_back(static_cast<int8_t>(sign_value));
        part.witness = std::move(witness);
        part.is_point = is_point;
        next.push_back(std::move(part));
      };

      if (face.is_point) {
        // A single point lies in exactly one part; no LP needed.
        keep_side(side, std::move(face.witness), true);
        continue;
      }

      // Whether h cuts the (relatively open, convex) face. One feasibility
      // LP per (face, plane) decides everything: if F meets h and the
      // witness is off h, then relative openness makes BOTH strict parts
      // nonempty; if the witness is ON h, either F ⊆ h or both strict
      // parts are nonempty. The third witness is constructed by an exact
      // extrapolation step instead of a second LP.
      std::vector<LinearConstraint> face_constraints;
      face_constraints.reserve(i + 1);
      for (size_t k = 0; k < i; ++k) {
        RelOp rel = face.sign[k] > 0
                        ? RelOp::kGt
                        : (face.sign[k] < 0 ? RelOp::kLt : RelOp::kEq);
        face_constraints.push_back(planes_[k].ToAtom(rel).ToLinearConstraint());
      }
      ++lp_calls_;
      if (side == 0) {
        // Witness already on h; probe one strict side.
        std::vector<LinearConstraint> probe = face_constraints;
        probe.push_back(h.ToAtom(RelOp::kGt).ToLinearConstraint());
        FeasibilityResult above = CurrentKernel().CheckFeasibility(dim_, probe);
        if (!above.feasible) {
          // Convexity: with the witness on h in the relative interior, an
          // empty upper part forces an empty lower part too, i.e. F ⊆ h.
          SignVector on_sign = face.sign;
          on_sign.push_back(0);
          keep_side(0, std::move(face.witness), zero_rank_is_full(on_sign));
          continue;
        }
        Vec below =
            ExtrapolateWitness(face.witness, above.witness, face_constraints);
        SignVector on_sign = face.sign;
        on_sign.push_back(0);
        const bool on_is_point = zero_rank_is_full(on_sign);
        keep_side(0, face.witness, on_is_point);
        keep_side(1, std::move(above.witness), false);
        keep_side(-1, std::move(below), false);
        continue;
      }
      std::vector<LinearConstraint> probe = face_constraints;
      probe.push_back(h.ToAtom(RelOp::kEq).ToLinearConstraint());
      FeasibilityResult on = CurrentKernel().CheckFeasibility(dim_, probe);
      if (!on.feasible) {
        // h misses the face: unsplit.
        keep_side(side, std::move(face.witness), false);
        continue;
      }
      // Split into three parts: witness side (old witness), on-part (LP
      // witness), opposite side (extrapolated witness).
      Vec beyond =
          ExtrapolateWitness(on.witness, face.witness, face_constraints);
      SignVector on_sign = face.sign;
      on_sign.push_back(0);
      const bool on_is_point = zero_rank_is_full(on_sign);
      keep_side(side, std::move(face.witness), false);
      keep_side(0, std::move(on.witness), on_is_point);
      keep_side(-side, std::move(beyond), false);
    }
    faces = std::move(next);
    split_span.Counter("faces", faces.size());
  }
  build_span.Counter("faces", faces.size());

  faces_.clear();
  faces_.reserve(faces.size());
  for (PendingFace& face : faces) {
    Face out;
    out.sign = std::move(face.sign);
    out.witness = std::move(face.witness);
    faces_.push_back(std::move(out));
  }
}

Vec Arrangement::ExtrapolateWitness(
    const Vec& anchor, const Vec& inside,
    const std::vector<LinearConstraint>& constraints) const {
  // z(t) = anchor + t * (anchor - inside) stays in the relatively open face
  // for small t > 0 (anchor is a relative-interior point of the face's
  // boundary slice, inside is a face point on the other side of the new
  // hyperplane), and lies strictly beyond the new hyperplane for every
  // t > 0. Pick t as half the largest step keeping all strict constraints.
  Vec direction = VecSub(anchor, inside);
  Rational t(1);
  bool bounded_step = false;
  for (const LinearConstraint& c : constraints) {
    const Rational slope = Dot(c.coeffs, direction);
    if (c.rel == RelOp::kEq) continue;  // slope is 0 on equalities
    // Constraints are strict (face parts); compute slack at the anchor.
    const Rational value = Dot(c.coeffs, anchor);
    Rational slack;
    bool tightening = false;
    switch (c.rel) {
      case RelOp::kLt:
      case RelOp::kLe:
        slack = c.rhs - value;
        tightening = slope.Sign() > 0;
        break;
      case RelOp::kGt:
      case RelOp::kGe:
        slack = value - c.rhs;
        tightening = slope.Sign() < 0;
        break;
      default:
        break;
    }
    if (!tightening) continue;
    Rational limit = slack / slope.Abs();
    if (!bounded_step || limit < t) {
      t = limit;
      bounded_step = true;
    }
  }
  if (bounded_step) t = t * Rational(1, 2);
  return VecAdd(anchor, VecScale(t, direction));
}

void Arrangement::FinalizeFaceData() {
  for (Face& face : faces_) {
    // Dimension: d minus the rank of the zero-set hyperplanes (the face is
    // relatively open in that flat).
    Matrix zero_rows;
    for (size_t i = 0; i < planes_.size(); ++i) {
      if (face.sign[i] != 0) continue;
      Vec row(dim_);
      for (size_t c = 0; c < dim_; ++c) {
        row[c] = Rational(planes_[i].coeffs()[c]);
      }
      zero_rows.AppendRow(row);
    }
    face.dim = static_cast<int>(dim_) -
               static_cast<int>(zero_rows.rows() == 0 ? 0 : Rank(zero_rows));
    if (face.dim == 0) {
      face.bounded = true;
    } else {
      const Conjunction conj = FaceFormulaFor(face);
      face.bounded = CurrentKernel().IsBoundedSystem(dim_, conj.ToConstraints());
    }
  }
}

Conjunction Arrangement::FaceFormulaFor(const Face& face) const {
  if (planes_.empty()) return Conjunction(dim_);  // the single face R^d
  return SignVectorConjunction(planes_, face.sign);
}

Conjunction Arrangement::FaceFormula(size_t index) const {
  return FaceFormulaFor(faces_[index]);
}

size_t Arrangement::LocateFace(const Vec& point) const {
  const SignVector sv = PositionVector(planes_, point);
  auto it = sign_index_.find(SignKey(sv));
  LCDB_CHECK_MSG(it != sign_index_.end(),
                 "faces partition R^d; point must be in some face");
  return it->second;
}

bool Arrangement::Adjacent(size_t f, size_t g) const {
  if (f == g) return false;
  const SignVector& a = faces_[f].sign;
  const SignVector& b = faces_[g].sign;
  return InClosureOf(a, b) || InClosureOf(b, a);
}

bool Arrangement::Incident(size_t f, size_t g) const {
  const int df = faces_[f].dim;
  const int dg = faces_[g].dim;
  if (df + 1 != dg && dg + 1 != df) return false;
  return Adjacent(f, g);
}

std::vector<size_t> Arrangement::FaceCountsByDimension() const {
  std::vector<size_t> counts(dim_ + 1, 0);
  for (const Face& face : faces_) {
    counts[static_cast<size_t>(face.dim)]++;
  }
  return counts;
}

}  // namespace lcdb
