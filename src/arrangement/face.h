#ifndef LCDB_ARRANGEMENT_FACE_H_
#define LCDB_ARRANGEMENT_FACE_H_

#include <string>

#include "geometry/hyperplane.h"

namespace lcdb {

/// One face of a hyperplane arrangement (Section 3): the set of all points
/// sharing a position vector. A face is relatively open and convex; its
/// affine support is the intersection of the hyperplanes it lies on.
struct Face {
  /// Position vector w.r.t. the arrangement's hyperplane list.
  SignVector sign;
  /// A rational point in the (relative interior of the) face.
  Vec witness;
  /// Dimension of the affine support.
  int dim = 0;
  /// Whether the face is contained in some hypercube (used by the capture
  /// machinery's bounded/unbounded split, proof of Theorem 6.4).
  bool bounded = false;

  std::string ToString() const;
};

}  // namespace lcdb

#endif  // LCDB_ARRANGEMENT_FACE_H_
