#include "arrangement/face.h"

namespace lcdb {

std::string Face::ToString() const {
  std::string out = "Face{dim=" + std::to_string(dim);
  out += bounded ? ", bounded" : ", unbounded";
  out += ", sign=" + SignVectorToString(sign);
  out += ", witness=" + VecToString(witness);
  out += "}";
  return out;
}

}  // namespace lcdb
