#include "arrangement/incidence_graph.h"

namespace lcdb {

IncidenceGraph::IncidenceGraph(const Arrangement& arrangement) {
  const size_t n = arrangement.num_faces();
  up_.resize(n);
  down_.resize(n);
  for (size_t f = 0; f < n; ++f) {
    for (size_t g = 0; g < n; ++g) {
      if (f == g) continue;
      if (arrangement.face(f).dim + 1 != arrangement.face(g).dim) continue;
      if (arrangement.Incident(f, g)) {
        up_[f].push_back(g);
        down_[g].push_back(f);
      }
    }
    if (arrangement.face(f).dim == 0) down_[f].push_back(kBottom);
    if (arrangement.face(f).dim == static_cast<int>(arrangement.dim())) {
      up_[f].push_back(kTop);
    }
  }
}

size_t IncidenceGraph::num_edges() const {
  size_t count = 0;
  for (const auto& edges : up_) count += edges.size();
  for (const auto& edges : down_) count += edges.size();
  return count;
}

std::string IncidenceGraph::DescribeNeighbourhood(
    const Arrangement& arrangement, size_t face) const {
  auto name = [&](size_t id) -> std::string {
    if (id == kBottom) return "EMPTY(-1)";
    if (id == kTop) return "A(S)(d+1)";
    return "f" + std::to_string(id) + "(dim " +
           std::to_string(arrangement.face(id).dim) + ")";
  };
  std::string out = name(face) + " sign " +
                    SignVectorToString(arrangement.face(face).sign) + "\n";
  out += "  up:";
  for (size_t g : up_[face]) out += " " + name(g);
  out += "\n  down:";
  for (size_t g : down_[face]) out += " " + name(g);
  out += "\n";
  return out;
}

}  // namespace lcdb
