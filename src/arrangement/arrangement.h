#ifndef LCDB_ARRANGEMENT_ARRANGEMENT_H_
#define LCDB_ARRANGEMENT_ARRANGEMENT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "arrangement/face.h"
#include "constraint/dnf_formula.h"
#include "geometry/hyperplane.h"

namespace lcdb {

/// The arrangement A(S) of a set of hyperplanes in R^d (Section 3): the
/// partition of R^d into faces (position-vector classes). Faces carry
/// witness interior points, dimensions and boundedness flags.
///
/// Construction is incremental: hyperplanes are inserted one at a time and
/// every existing face is split into its (nonempty) below/on/above parts,
/// with nonemptiness decided by the exact LP oracle and one part witnessed
/// for free by the face's existing witness point. The face count is
/// O(n^d) and the total work polynomial — Theorem 3.1 made executable
/// (`lp_calls` instruments the dominant cost).
class Arrangement {
 public:
  /// Builds the arrangement of `planes` (deduplicated) in R^dim.
  static Arrangement Build(std::vector<Hyperplane> planes, size_t dim);

  /// Convenience: the arrangement induced by a DNF formula, using the
  /// hyperplane set 𝔥(S) of all atoms (Section 3).
  static Arrangement FromFormula(const DnfFormula& formula);

  size_t dim() const { return dim_; }
  size_t num_faces() const { return faces_.size(); }
  const Face& face(size_t index) const { return faces_[index]; }
  const std::vector<Face>& faces() const { return faces_; }
  const std::vector<Hyperplane>& planes() const { return planes_; }

  /// Index of the unique face containing `point` (the faces partition R^d).
  size_t LocateFace(const Vec& point) const;

  /// The conjunction of atoms defining face `index`, read off its position
  /// vector (proof of Theorem 4.3: "a conjunction of atoms defining the
  /// face can easily be obtained from 𝔥(S)").
  Conjunction FaceFormula(size_t index) const;

  /// Adjacency in the paper's sense (Definition 4.1): one face meets the
  /// closure of the other. Equivalent on arrangements to the sign-vector
  /// weakening order; self-adjacency is excluded.
  bool Adjacent(size_t f, size_t g) const;

  /// Incidence (Section 3): adjacency with dimensions differing by one.
  bool Incident(size_t f, size_t g) const;

  /// Number of faces of each dimension 0..d.
  std::vector<size_t> FaceCountsByDimension() const;

  /// LP feasibility calls made during construction (cost instrumentation
  /// for the Theorem 3.1 experiment).
  size_t lp_calls() const { return lp_calls_; }

 private:
  Arrangement(size_t dim, std::vector<Hyperplane> planes)
      : dim_(dim), planes_(std::move(planes)) {}

  void BuildFaces();
  void FinalizeFaceData();
  Conjunction FaceFormulaFor(const Face& face) const;
  /// An exact point of the face strictly beyond the hyperplane the anchor
  /// lies on: anchor + t * (anchor - inside) with t chosen by a ratio test
  /// against the face's strict constraints. Replaces a second LP call per
  /// face split (see BuildFaces).
  Vec ExtrapolateWitness(const Vec& anchor, const Vec& inside,
                         const std::vector<LinearConstraint>& constraints)
      const;

  size_t dim_;
  std::vector<Hyperplane> planes_;
  std::vector<Face> faces_;
  std::unordered_map<std::string, size_t> sign_index_;
  size_t lp_calls_ = 0;
};

}  // namespace lcdb

#endif  // LCDB_ARRANGEMENT_ARRANGEMENT_H_
