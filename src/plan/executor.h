#ifndef LCDB_PLAN_EXECUTOR_H_
#define LCDB_PLAN_EXECUTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "db/region_extension.h"
#include "plan/plan_ir.h"

namespace lcdb {

/// Executes a compiled (and usually optimized) plan against a region
/// extension. The executor is the *only* layer of the pipeline that touches
/// DnfFormula algebra, quantifier elimination and the constraint kernel;
/// the planner and optimizer only build and rewrite the operator DAG.
///
/// Its recursion reproduces the legacy Evaluator's algebra step for step
/// (same short-circuits, same accumulation order), so a plan executed
/// without optimization yields byte-identical answer formulas. Caching
/// follows each node's CachePolicy — assigned by the optimizer's
/// MarkCacheable pass — keyed by the values of the node's free region
/// variables plus the stage versions of its free set variables.
///
/// The executor is single-query: construct, call Run() once, read the
/// updated stats. Expensive operators (QE, region expansion, hull,
/// fixpoints, closures, rBIT) report wall-clock per-operator timings into
/// Stats::op_timings.
class PlanExecutor {
 public:
  PlanExecutor(const CompiledPlan& plan, const RegionExtension& ext,
               const Evaluator::Options& options, Evaluator::Stats* stats);

  /// Evaluates the plan root symbolically; the result ranges over the
  /// plan's num_columns element columns.
  DnfFormula Run();

  /// Turns on per-plan-node profiling (EXPLAIN ANALYZE): every node
  /// evaluation records its inclusive wall-clock, kernel decisions, memo
  /// hits, governor checkpoints and result cardinality into `profile`.
  /// Must be called before Run(); `profile` must outlive the executor.
  /// Profiling perturbs only timings, never results.
  void EnableProfiling(PlanProfile* profile) { profile_ = profile; }

 private:
  using RegionEnv = std::map<std::string, size_t>;
  using Tuple = std::vector<size_t>;
  using TupleSet = std::set<Tuple>;
  struct SetBinding {
    const TupleSet* tuples = nullptr;
    size_t version = 0;
  };
  using SetEnv = std::map<std::string, SetBinding>;

  DnfFormula Eval(const PlanNode& node, RegionEnv& renv, SetEnv& senv);
  DnfFormula EvalUncached(const PlanNode& node, RegionEnv& renv,
                          SetEnv& senv);
  bool EvalBool(const PlanNode& node, RegionEnv& renv, SetEnv& senv);
  bool EvalBoolUncached(const PlanNode& node, RegionEnv& renv, SetEnv& senv);

  /// Wraps one uncached evaluation with the profile measurements
  /// (profiling mode only; `rows` extracts the result cardinality).
  template <typename Fn>
  auto Profiled(const PlanNode& node, Fn&& eval);

  bool EvalRegionAtom(const PlanNode& node, RegionEnv& renv);
  bool EvalRbit(const PlanNode& node, RegionEnv& renv, SetEnv& senv);
  /// Deposits completed fixpoint/closure cache entries into the ambient
  /// ResumeCollector (core/resume.h). Called from Run's unwind path: the
  /// executor's caches are stack-local and die with the interrupt, unlike
  /// the legacy walk's evaluator-member caches.
  void HarvestResumeState();
  const TupleSet& FixpointSet(const PlanNode& node);
  const std::vector<std::vector<bool>>& ClosureMatrix(const PlanNode& node);
  size_t TupleIndex(const Tuple& tuple) const;

  /// Cache key under the node's CachePolicy: free-region values
  /// (name-sorted) then free-set stage versions.
  bool CacheKey(const PlanNode& node, const RegionEnv& renv,
                const SetEnv& senv, Tuple* key) const;

  const CompiledPlan& plan_;
  const RegionExtension& ext_;
  const Evaluator::Options& options_;
  Evaluator::Stats* stats_;
  PlanProfile* profile_ = nullptr;  ///< EXPLAIN ANALYZE sink, usually null
  size_t num_columns_;

  std::map<const PlanNode*, std::map<Tuple, DnfFormula>> memo_;
  std::map<const PlanNode*, std::map<Tuple, bool>> bool_memo_;
  std::map<const PlanNode*, TupleSet> fixpoint_cache_;
  std::map<const PlanNode*, std::vector<std::vector<bool>>> closure_cache_;
  size_t set_version_counter_ = 0;
};

}  // namespace lcdb

#endif  // LCDB_PLAN_EXECUTOR_H_
