#ifndef LCDB_PLAN_PLAN_IR_H_
#define LCDB_PLAN_PLAN_IR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "constraint/dnf_formula.h"
#include "core/ast.h"
#include "plan/plan_stats.h"

namespace lcdb {

/// Operators of the query plan IR — the explicit middle layer between the
/// typechecked AST and the symbolic execution engine. The IR makes the two
/// evaluation modes of Theorem 4.3's algorithm first-class:
///
///  * *symbolic* operators produce a quantifier-free DnfFormula over the
///    query's element columns (the closure property of Section 2);
///  * *boolean* operators produce a truth value under a region/set
///    environment — the mode fixed-point and closure bodies run in.
///
/// The legacy tree-walk evaluator chose between these modes dynamically at
/// every node; the planner decides once, at compile time, and the optimizer
/// then rewrites the typed tree (plan/optimizer.h) before the executor
/// (plan/executor.h) ever touches a DnfFormula.
enum class PlanOp {
  // ---- Symbolic operators (result: DnfFormula over num_columns vars).
  kConstFormula,   ///< precomputed formula: true/false/compare/relation atoms
  kInRegion,       ///< substitute env(R)'s region formula through `subst`
  kLiftBool,       ///< evaluate the boolean child; True(m) / False(m)
  kNegateSym,
  kAndSym,
  kOrSym,
  kImpliesSym,
  kIffSym,
  kHull,           ///< Section 8 convex-closure operator
  kExistsElim,     ///< Fourier-Motzkin exists-elimination of `column`
  kForallElim,     ///< dual forall-elimination of `column`
  kExpandExists,   ///< symbolic union over the region sort
  kExpandForall,   ///< symbolic intersection over the region sort
  // ---- Boolean operators (result: bool).
  kConstBool,
  kNotBool,
  kAndBool,
  kOrBool,
  kImpliesBool,
  kIffBool,
  kAnyRegion,      ///< short-circuit exists-loop over the region sort
  kAllRegion,      ///< short-circuit forall-loop over the region sort
  kRegionAtom,     ///< adj / = / subset / meets / dim / bounded (source_kind)
  kSetMember,      ///< M(R1..Rk) against the current fixpoint stage
  kFixpointMember, ///< [lfp/ifp/pfp ...](args) membership (source_kind)
  kClosureMember,  ///< [tc/dtc ...](args; args2) reachability (source_kind)
  kRbitMember,     ///< rBIT bit test (symbolic body child)
  kNonEmpty,       ///< emptiness test of the symbolic child's formula
};

/// Executor caching policy for a node, assigned by the optimizer's hoisting
/// pass (raw plans carry kNone everywhere — disabling the pass disables all
/// subformula caching, the ablation the acceptance experiment measures).
enum class CachePolicy {
  kNone,
  /// Cache results keyed by the values of the node's free region variables
  /// (plus the stage version of each free set variable). A node that is
  /// set-variable independent is thereby hoisted out of fixpoint iteration:
  /// it is computed once per region assignment instead of once per stage.
  kByRegionKey,
};

/// One node of the plan DAG. Nodes are immutable after optimization and may
/// be shared (common-subplan elimination), so the executor keys its caches
/// by node identity.
struct PlanNode {
  PlanOp op = PlanOp::kConstBool;
  /// Originating AST kind for operators whose behaviour depends on it
  /// (region-atom predicate, lfp/ifp/pfp flavour, tc/dtc flavour).
  NodeKind source_kind = NodeKind::kTrue;
  std::vector<std::shared_ptr<PlanNode>> children;

  // ---- Compile-time payloads.
  std::optional<DnfFormula> const_formula;  ///< kConstFormula
  bool const_bool = false;                  ///< kConstBool
  /// Affine substitution precomputed from the applied terms (kInRegion:
  /// region formula -> columns; kHull: hull result -> columns).
  std::vector<AffineExpr> subst;
  std::vector<AffineExpr> hull_project;  ///< kHull: columns -> hull space
  size_t hull_arity = 0;                 ///< kHull: number of hull variables
  size_t column = 0;          ///< kExistsElim/kForallElim/kRbitMember column
  int dim_value = 0;          ///< kRegionAtom for dim(R) = k
  std::string set_var;        ///< kSetMember / kFixpointMember
  std::string region_var;     ///< bound variable of region quantifier ops
  std::vector<std::string> region_args;   ///< applied region variables
  std::vector<std::string> region_args2;  ///< second tuple of kClosureMember
  std::vector<std::string> bound_vars;    ///< fixpoint / closure bound tuple

  // ---- Annotations (planner-derived, optimizer-maintained).
  /// Free region variables, name-sorted — the executor's cache key order.
  std::vector<std::string> free_region;
  /// Free set variables, name-sorted.
  std::vector<std::string> free_sets;
  /// Subtree evaluates to exactly True(m)/False(m): no element-sort payload
  /// outside member-operator bodies. Such subtrees may be narrowed to
  /// boolean mode without changing the answer formula byte-for-byte.
  bool region_pure = false;
  /// Subtree does enough work (quantifier, element atom, operator) to repay
  /// a cache lookup — the planner's copy of the legacy WorthCaching bit.
  bool worth_caching = false;
  CachePolicy cache = CachePolicy::kNone;
  /// Estimated region-sort fan-out: iterations this node's loop performs
  /// (|Reg| for quantifiers, |Reg|^k for fixpoints, |Reg|^2m for closures).
  size_t est_fanout = 1;

  bool IsSymbolic() const { return op <= PlanOp::kExpandForall; }
};

using PlanPtr = std::shared_ptr<PlanNode>;

/// A fully compiled query: the plan root plus the symbolic variable space
/// it was lowered against.
struct CompiledPlan {
  PlanPtr root;
  /// Total number of element columns (bound ones included), matching the
  /// TypeInfo the query was checked with.
  size_t num_columns = 0;
  /// Regions of the extension the plan was compiled for.
  size_t num_regions = 0;
};

/// Human-readable operator name (explain output, timing keys).
std::string PlanOpName(PlanOp op);

/// Operators whose executions are wall-clocked into Stats::op_timings (the
/// expensive ones: QE, region expansion, hull, fixpoints, closures, rBIT).
/// Memo hits on these ops are broken out as OpTiming::memo_hits so per-op
/// profiles stay comparable between the tree walk and the bytecode VM.
inline bool IsTimedPlanOp(PlanOp op) {
  switch (op) {
    case PlanOp::kHull:
    case PlanOp::kExistsElim:
    case PlanOp::kForallElim:
    case PlanOp::kExpandExists:
    case PlanOp::kExpandForall:
    case PlanOp::kRbitMember:
    case PlanOp::kFixpointMember:
    case PlanOp::kClosureMember:
      return true;
    default:
      return false;
  }
}

/// Recomputes the derived annotations of `node` from its payload and its
/// children's (already correct) annotations. Optimizer passes call this
/// after every structural rewrite; the planner uses it bottom-up.
void DeriveAnnotations(PlanNode* node, size_t num_regions);

/// Number of distinct nodes in the (possibly shared) plan DAG.
size_t CountPlanNodes(const PlanNode& root);

/// Pretty-prints the plan as an indented tree with per-operator
/// annotations: free region variables, set-dependence, caching decision and
/// estimated region fan-out. Shared subplans are printed once and
/// referenced by id afterwards (`lcdbq --explain`).
///
/// With a `profile` (EXPLAIN ANALYZE) each node line additionally carries
/// its measured execution: calls, inclusive wall-clock, kernel decisions
/// (with cache hits), executor memo hits, governor checkpoints and result
/// cardinality; nodes the execution never reached are marked as such.
///
/// With `costs` (the tier-2 analyzer's estimates, analysis/plan_cost.h)
/// each node line carries the predicted execution: estimated evaluations,
/// result rows and node-local BigInt operations, with dead cache marks.
std::string PrintPlan(const CompiledPlan& plan,
                      const PlanProfile* profile = nullptr,
                      const PlanCostMap* costs = nullptr);

}  // namespace lcdb

#endif  // LCDB_PLAN_PLAN_IR_H_
