#include "plan/executor.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>

#include "constraint/simplify.h"
#include "core/pfp_cycle.h"
#include "core/resume.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/trace.h"
#include "geometry/convex_closure.h"
#include "qe/fourier_motzkin.h"
#include "util/failpoint.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// Accumulates wall-clock time of one operator execution into op_timings,
/// and opens a trace span named after the operator when a tracer is
/// installed (the span is the per-plan-node level of the trace tree).
class ScopedOpTimer {
 public:
  ScopedOpTimer(OpTimings* timings, PlanOp op)
      : timings_(timings), op_(op),
        span_(PlanOpName(op).c_str()),  // BeginSpan copies the name
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedOpTimer() {
    OpTiming& slot = (*timings_)[PlanOpName(op_)];
    ++slot.count;
    slot.total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  }

 private:
  OpTimings* timings_;
  PlanOp op_;
  TraceSpan span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

PlanExecutor::PlanExecutor(const CompiledPlan& plan,
                           const RegionExtension& ext,
                           const Evaluator::Options& options,
                           Evaluator::Stats* stats)
    : plan_(plan), ext_(ext), options_(options), stats_(stats),
      num_columns_(plan.num_columns) {}

/// EXPLAIN ANALYZE measurement of one uncached node evaluation: inclusive
/// wall-clock plus deltas of the ambient kernel and governor counters. An
/// unwinding QueryInterrupt skips the recording, which is the right answer —
/// a tripped node never produced a result to attribute.
template <typename Fn>
auto PlanExecutor::Profiled(const PlanNode& node, Fn&& eval) {
  const KernelStats kernel_before = CurrentKernel().stats();
  QueryGovernor* governor = CurrentGovernorOrNull();
  const uint64_t checkpoints_before =
      governor != nullptr ? governor->stats().checkpoints : 0;
  const auto start = std::chrono::steady_clock::now();
  auto result = eval();
  PlanNodeProfile& p = (*profile_)[&node];
  p.total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  const KernelStats kernel_after = CurrentKernel().stats();
  p.kernel_queries +=
      (kernel_after.feasibility_queries - kernel_before.feasibility_queries) +
      (kernel_after.implication_queries - kernel_before.implication_queries);
  p.kernel_cache_hits +=
      (kernel_after.cache_hits - kernel_before.cache_hits) +
      (kernel_after.implication_cache_hits -
       kernel_before.implication_cache_hits);
  if (governor != nullptr) {
    p.governor_checkpoints +=
        governor->stats().checkpoints - checkpoints_before;
  }
  return result;
}

DnfFormula PlanExecutor::Run() {
  // Named injection site for the whole-plan path (failpoint_test.cc): fires
  // after compilation/optimization but before the first operator runs.
  LCDB_FAILPOINT("plan.execute");
  try {
    RegionEnv renv;
    SetEnv senv;
    return Eval(*plan_.root, renv, senv);
  } catch (...) {
    // This executor dies with the unwind, so completed fixpoint/closure
    // entries must be harvested into the ambient resume collector here —
    // the Evaluate boundary only sees the evaluator's own (legacy) caches.
    HarvestResumeState();
    throw;
  }
}

void PlanExecutor::HarvestResumeState() {
  ResumeCollector* resume = CurrentResumeCollectorOrNull();
  if (resume == nullptr) return;
  for (const auto& entry : fixpoint_cache_) {
    if (uint64_t site = resume->SiteKey(entry.first)) {
      resume->CaptureCompletedFixpoint(site, entry.second);
    }
  }
  for (const auto& entry : closure_cache_) {
    if (uint64_t site = resume->SiteKey(entry.first)) {
      resume->CaptureCompletedClosure(site, entry.second);
    }
  }
}

bool PlanExecutor::CacheKey(const PlanNode& node, const RegionEnv& renv,
                            const SetEnv& senv, Tuple* key) const {
  key->clear();
  for (const std::string& r : node.free_region) {  // name-sorted
    auto it = renv.find(r);
    LCDB_CHECK(it != renv.end());
    key->push_back(it->second);
  }
  // Set-dependent results are cached per fixpoint *stage* via the binding's
  // version stamp.
  for (const std::string& m : node.free_sets) {
    key->push_back(senv.at(m).version);
  }
  return true;
}

DnfFormula PlanExecutor::Eval(const PlanNode& node, RegionEnv& renv,
                              SetEnv& senv) {
  // Cancellation point per plan node — in particular one per region-
  // quantifier expansion step, the executor's widest loops.
  GovernorCheckpoint();
  ++stats_->node_evaluations;
  if (profile_ != nullptr) ++(*profile_)[&node].calls;
  Tuple key;
  const bool cacheable = options_.memoize &&
                         node.cache == CachePolicy::kByRegionKey &&
                         CacheKey(node, renv, senv, &key);
  if (cacheable) {
    auto& per_node = memo_[&node];
    auto it = per_node.find(key);
    if (it != per_node.end()) {
      ++stats_->memo_hits;
      if (profile_ != nullptr) ++(*profile_)[&node].memo_hits;
      if (IsTimedPlanOp(node.op)) {
        ++stats_->op_timings[PlanOpName(node.op)].memo_hits;
      }
      return it->second;
    }
  }
  DnfFormula result =
      profile_ == nullptr
          ? EvalUncached(node, renv, senv)
          : Profiled(node, [&] { return EvalUncached(node, renv, senv); });
  if (profile_ != nullptr) {
    (*profile_)[&node].rows = result.disjuncts().size();
  }
  if (cacheable) memo_[&node].emplace(std::move(key), result);
  return result;
}

DnfFormula PlanExecutor::EvalUncached(const PlanNode& node, RegionEnv& renv,
                                      SetEnv& senv) {
  const size_t m = num_columns_;
  switch (node.op) {
    case PlanOp::kConstFormula:
      return *node.const_formula;
    case PlanOp::kInRegion: {
      const Conjunction& region =
          ext_.RegionFormula(renv.at(node.region_args[0]));
      DnfFormula region_formula(region.num_vars(), {region});
      return region_formula.Substitute(node.subst, m);
    }
    case PlanOp::kLiftBool:
      return EvalBool(*node.children[0], renv, senv) ? DnfFormula::True(m)
                                                     : DnfFormula::False(m);
    case PlanOp::kNegateSym:
      return Eval(*node.children[0], renv, senv).Negate();
    case PlanOp::kAndSym: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyFalse()) return a;
      return a.And(Eval(*node.children[1], renv, senv));
    }
    case PlanOp::kOrSym: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyTrue()) return a;
      return a.Or(Eval(*node.children[1], renv, senv));
    }
    case PlanOp::kImpliesSym: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyFalse()) return DnfFormula::True(m);
      return a.Negate().Or(Eval(*node.children[1], renv, senv));
    }
    case PlanOp::kIffSym: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      DnfFormula b = Eval(*node.children[1], renv, senv);
      return a.And(b).Or(a.Negate().And(b.Negate()));
    }
    case PlanOp::kHull: {
      ScopedOpTimer timer(&stats_->op_timings, node.op);
      DnfFormula body = Eval(*node.children[0], renv, senv);
      DnfFormula projected = body.Substitute(node.hull_project,
                                             node.hull_arity);
      Result<DnfFormula> hull = ConvexClosure(projected);
      LCDB_CHECK_MSG(hull.ok(), "convex closure failed");
      return hull->Substitute(node.subst, m);
    }
    case PlanOp::kExistsElim: {
      ScopedOpTimer timer(&stats_->op_timings, node.op);
      ++stats_->qe_eliminations;
      return ExistsVariable(Eval(*node.children[0], renv, senv), node.column);
    }
    case PlanOp::kForallElim: {
      ScopedOpTimer timer(&stats_->op_timings, node.op);
      ++stats_->qe_eliminations;
      return ForallVariable(Eval(*node.children[0], renv, senv), node.column);
    }
    case PlanOp::kExpandExists: {
      ScopedOpTimer timer(&stats_->op_timings, node.op);
      ++stats_->region_expansions;
      DnfFormula acc = DnfFormula::False(m);
      for (size_t r = 0; r < ext_.num_regions(); ++r) {
        renv[node.region_var] = r;
        acc = acc.Or(Eval(*node.children[0], renv, senv));
        if (acc.IsSyntacticallyTrue()) break;
      }
      renv.erase(node.region_var);
      return acc;
    }
    case PlanOp::kExpandForall: {
      ScopedOpTimer timer(&stats_->op_timings, node.op);
      ++stats_->region_expansions;
      DnfFormula acc = DnfFormula::True(m);
      for (size_t r = 0; r < ext_.num_regions(); ++r) {
        renv[node.region_var] = r;
        acc = acc.And(Eval(*node.children[0], renv, senv));
        if (acc.IsSyntacticallyFalse()) break;
      }
      renv.erase(node.region_var);
      return acc;
    }
    default:
      LCDB_CHECK_MSG(false, "boolean operator in symbolic context");
      return DnfFormula::False(m);
  }
}

bool PlanExecutor::EvalBool(const PlanNode& node, RegionEnv& renv,
                            SetEnv& senv) {
  GovernorCheckpoint();
  ++stats_->bool_evaluations;
  if (profile_ != nullptr) ++(*profile_)[&node].calls;
  Tuple key;
  const bool cacheable = options_.memoize &&
                         node.cache == CachePolicy::kByRegionKey &&
                         CacheKey(node, renv, senv, &key);
  if (cacheable) {
    auto& per_node = bool_memo_[&node];
    auto it = per_node.find(key);
    if (it != per_node.end()) {
      ++stats_->memo_hits;
      if (profile_ != nullptr) ++(*profile_)[&node].memo_hits;
      if (IsTimedPlanOp(node.op)) {
        ++stats_->op_timings[PlanOpName(node.op)].memo_hits;
      }
      return it->second;
    }
  }
  const bool result =
      profile_ == nullptr
          ? EvalBoolUncached(node, renv, senv)
          : Profiled(node, [&] { return EvalBoolUncached(node, renv, senv); });
  if (profile_ != nullptr) {
    (*profile_)[&node].rows = result ? 1 : 0;
  }
  if (cacheable) bool_memo_[&node].emplace(std::move(key), result);
  return result;
}

bool PlanExecutor::EvalBoolUncached(const PlanNode& node, RegionEnv& renv,
                                    SetEnv& senv) {
  switch (node.op) {
    case PlanOp::kConstBool:
      return node.const_bool;
    case PlanOp::kNotBool:
      return !EvalBool(*node.children[0], renv, senv);
    case PlanOp::kAndBool:
      return EvalBool(*node.children[0], renv, senv) &&
             EvalBool(*node.children[1], renv, senv);
    case PlanOp::kOrBool:
      return EvalBool(*node.children[0], renv, senv) ||
             EvalBool(*node.children[1], renv, senv);
    case PlanOp::kImpliesBool:
      return !EvalBool(*node.children[0], renv, senv) ||
             EvalBool(*node.children[1], renv, senv);
    case PlanOp::kIffBool:
      return EvalBool(*node.children[0], renv, senv) ==
             EvalBool(*node.children[1], renv, senv);
    case PlanOp::kAnyRegion: {
      ++stats_->region_expansions;
      bool found = false;
      for (size_t r = 0; r < ext_.num_regions() && !found; ++r) {
        renv[node.region_var] = r;
        found = EvalBool(*node.children[0], renv, senv);
      }
      renv.erase(node.region_var);
      return found;
    }
    case PlanOp::kAllRegion: {
      ++stats_->region_expansions;
      bool holds = true;
      for (size_t r = 0; r < ext_.num_regions() && holds; ++r) {
        renv[node.region_var] = r;
        holds = EvalBool(*node.children[0], renv, senv);
      }
      renv.erase(node.region_var);
      return holds;
    }
    case PlanOp::kRegionAtom:
      return EvalRegionAtom(node, renv);
    case PlanOp::kSetMember: {
      const TupleSet* set = senv.at(node.set_var).tuples;
      Tuple tuple;
      tuple.reserve(node.region_args.size());
      for (const std::string& r : node.region_args) {
        tuple.push_back(renv.at(r));
      }
      return set->count(tuple) > 0;
    }
    case PlanOp::kFixpointMember: {
      const TupleSet& fp = FixpointSet(node);
      Tuple tuple;
      tuple.reserve(node.region_args.size());
      for (const std::string& r : node.region_args) {
        tuple.push_back(renv.at(r));
      }
      return fp.count(tuple) > 0;
    }
    case PlanOp::kClosureMember: {
      const auto& closure = ClosureMatrix(node);
      Tuple from, to;
      for (const std::string& r : node.region_args) from.push_back(renv.at(r));
      for (const std::string& r : node.region_args2) to.push_back(renv.at(r));
      return closure[TupleIndex(from)][TupleIndex(to)];
    }
    case PlanOp::kRbitMember:
      return EvalRbit(node, renv, senv);
    case PlanOp::kNonEmpty:
      // Element-sort subtree in a boolean context: all element variables
      // inside are bound, so the child's formula is constant — test
      // emptiness, exactly as the legacy EvalBool fallthrough.
      return !Eval(*node.children[0], renv, senv).IsEmpty();
    default:
      LCDB_CHECK_MSG(false, "symbolic operator in boolean context");
      return false;
  }
}

bool PlanExecutor::EvalRegionAtom(const PlanNode& node, RegionEnv& renv) {
  auto region = [&](size_t i) { return renv.at(node.region_args[i]); };
  switch (node.source_kind) {
    case NodeKind::kAdjacent:
      return ext_.Adjacent(region(0), region(1));
    case NodeKind::kRegionEq:
      return region(0) == region(1);
    case NodeKind::kSubsetS:
      return ext_.RegionSubsetOfS(region(0));
    case NodeKind::kIntersectsS:
      return ext_.RegionIntersectsS(region(0));
    case NodeKind::kDimAtom:
      return ext_.RegionDim(region(0)) == node.dim_value;
    case NodeKind::kBoundedAtom:
      return ext_.RegionBounded(region(0));
    default:
      LCDB_CHECK_MSG(false, "not a region atom");
      return false;
  }
}

/// rBIT (Definition 5.1): see core/rbit.cc, whose algorithm this ports onto
/// the plan's precompiled column payload.
bool PlanExecutor::EvalRbit(const PlanNode& node, RegionEnv& renv,
                            SetEnv& senv) {
  ScopedOpTimer timer(&stats_->op_timings, node.op);
  DnfFormula body = Eval(*node.children[0], renv, senv);
  const size_t col = node.column;
  for (size_t c = 0; c < num_columns_; ++c) {
    if (c != col && VariableOccurs(body, c)) {
      // Cannot happen for type-checked queries.
      LCDB_CHECK_MSG(false, "rBIT body depends on another element variable");
    }
  }
  // Singleton test: nonempty, and implied to equal its witness value.
  Vec witness = body.FindWitness();
  if (witness.empty()) return false;  // empty set: no unique rational
  const Rational a = witness[col];
  Vec point_coeffs(num_columns_);
  point_coeffs[col] = Rational(1);
  DnfFormula exactly_a =
      DnfFormula::FromAtom(LinearAtom(point_coeffs, RelOp::kEq, a));
  if (!Implies(body, exactly_a)) return false;  // more than one value

  const size_t rn = renv.at(node.region_args[0]);
  const size_t rd = renv.at(node.region_args[1]);
  if (a.IsZero()) {
    return rn == rd && ext_.RegionDim(rn) > 0;
  }
  if (ext_.RegionDim(rn) != 0 || ext_.RegionDim(rd) != 0) return false;
  const size_t i = ext_.ZeroDimRank(rn);
  const size_t j = ext_.ZeroDimRank(rd);
  return a.num().Bit(i) && a.den().Bit(j);
}

/// Kleene iteration of [LFP/IFP/PFP_{M, X̄} body] — see core/fixpoint.cc for
/// the semantics notes; the algorithm is ported verbatim onto the boolean
/// plan body.
const PlanExecutor::TupleSet& PlanExecutor::FixpointSet(const PlanNode& node) {
  auto cached = fixpoint_cache_.find(&node);
  if (cached != fixpoint_cache_.end()) return cached->second;

  // Resume fast path (core/resume.h): reuse a completed set from a prior
  // interrupted run instead of recomputing it.
  ResumeCollector* resume = CurrentResumeCollectorOrNull();
  const uint64_t site = resume != nullptr ? resume->SiteKey(&node) : 0;
  if (site != 0) {
    if (const TupleSet* done = resume->CompletedFixpoint(site)) {
      ++stats_->resume_sets_restored;
      return fixpoint_cache_.emplace(&node, *done).first->second;
    }
  }

  ScopedOpTimer timer(&stats_->op_timings, node.op);
  ++stats_->fixpoints_computed;
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t k = node.bound_vars.size();
  const size_t n = ext_.num_regions();
  size_t space = 1;
  for (size_t i = 0; i < k; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "fixed-point tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "fixed-point");

  const PlanNode& body = *node.children[0];
  const bool is_pfp = node.source_kind == NodeKind::kPfp;

  // One Kleene stage (pure in the set binding); see core/fixpoint.cc.
  auto kleene_stage = [&](const TupleSet& cur) {
    TupleSet next;
    if (!is_pfp) next = cur;  // LFP (monotone) / IFP keep prior stage
    RegionEnv body_env;
    SetEnv body_senv;
    body_senv.emplace(node.set_var, SetBinding{&cur, ++set_version_counter_});
    Tuple tuple(k, 0);
    bool done_tuples = (n == 0);
    while (!done_tuples) {
      // Monotone/inflationary stages never lose tuples, so skip re-proofs.
      if (is_pfp || !next.count(tuple)) {
        for (size_t i = 0; i < k; ++i) {
          body_env[node.bound_vars[i]] = tuple[i];
        }
        if (EvalBool(body, body_env, body_senv)) next.insert(tuple);
      }
      // Advance the k-digit counter.
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) break;
        tuple[pos] = 0;
        if (pos == 0) done_tuples = true;
      }
      if (k == 0) done_tuples = true;
    }
    return next;
  };

  auto account = [&] {
    stats_->fixpoint_feasibility_queries +=
        CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  };

  TupleSet current;
  size_t iteration = 0;
  PfpCycleDetector cycle;  // PFP only; stores 8 bytes per stage
  if (site != 0) {
    // Continue an interrupted Kleene loop from its last completed stage
    // (pure in the environment by Definition 5.1; see core/fixpoint.cc).
    FixpointResumePoint point;
    if (resume->TakeInProgress(site, &point)) {
      current = std::move(point.approximation);
      iteration = point.iteration;
      cycle.SeedHashes(point.pfp_hashes);
      ++stats_->resume_fixpoints_resumed;
      stats_->resume_stages_skipped += point.iteration;
    }
  }
  try {
    for (;; ++iteration) {
      LCDB_FAILPOINT("fixpoint.stage");
      GovernorOnFixpointIteration();
      if (is_pfp) {
        if (iteration > options_.max_pfp_iterations) {
          throw QueryInterrupt(Status::ResourceExhausted(
              "PFP exceeded max_pfp_iterations (" +
              std::to_string(options_.max_pfp_iterations) + ")"));
        }
        if (cycle.SeenBefore(current, iteration, kleene_stage)) {
          // Revisited a state without reaching a fixed point: diverges.
          account();
          return fixpoint_cache_.emplace(&node, TupleSet{}).first->second;
        }
      }
      ++stats_->fixpoint_iterations;
      TupleSet next;
      {
        TraceSpan stage_span("fixpoint.stage");
        next = kleene_stage(current);
        stage_span.Counter("iteration", iteration);
        stage_span.Counter("tuples", next.size());
      }
      if (next == current) break;
      current = std::move(next);
    }
  } catch (const QueryInterrupt&) {
    // Checkpoint the last completed stage; a mid-stage interrupt only
    // discards the partial `next` local to kleene_stage.
    if (site != 0) {
      std::vector<uint64_t> pfp_hashes =
          is_pfp ? cycle.ExportHashes(current) : std::vector<uint64_t>{};
      resume->CaptureInProgress(site, std::move(current), iteration,
                                std::move(pfp_hashes));
    }
    throw;
  }
  account();
  return fixpoint_cache_.emplace(&node, std::move(current)).first->second;
}

size_t PlanExecutor::TupleIndex(const Tuple& tuple) const {
  const size_t n = ext_.num_regions();
  size_t index = 0;
  for (size_t v : tuple) {
    LCDB_CHECK(v < n);
    index = index * n + v;
  }
  return index;
}

/// Reachability bitmap of a TC/DTC operator (Definition 7.2) — see
/// core/transitive_closure.cc for the semantics notes.
const std::vector<std::vector<bool>>& PlanExecutor::ClosureMatrix(
    const PlanNode& node) {
  auto cached = closure_cache_.find(&node);
  if (cached != closure_cache_.end()) return cached->second;

  // Resume fast path (core/resume.h): completed-matrix granularity only.
  if (ResumeCollector* resume = CurrentResumeCollectorOrNull()) {
    if (uint64_t site = resume->SiteKey(&node)) {
      if (const auto* done = resume->CompletedClosure(site)) {
        ++stats_->resume_sets_restored;
        return closure_cache_.emplace(&node, *done).first->second;
      }
    }
  }

  ScopedOpTimer timer(&stats_->op_timings, node.op);
  ++stats_->closures_computed;
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t m = node.bound_vars.size() / 2;
  const size_t n = ext_.num_regions();
  size_t space = 1;
  for (size_t i = 0; i < m; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "TC tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "closure");

  // Enumerate all m-tuples once.
  std::vector<Tuple> tuples;
  tuples.reserve(space);
  Tuple tuple(m, 0);
  if (n > 0) {
    while (true) {
      tuples.push_back(tuple);
      size_t pos = m;
      bool advanced = false;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) {
          advanced = true;
          break;
        }
        tuple[pos] = 0;
      }
      if (!advanced) break;
    }
  }
  const size_t total = tuples.size();

  // Edge relation from the body.
  const PlanNode& body = *node.children[0];
  RegionEnv env;
  SetEnv senv;
  std::vector<std::vector<bool>> edges(total, std::vector<bool>(total, false));
  for (size_t u = 0; u < total; ++u) {
    // Edge construction is the LP-heavy phase (total^2 body evaluations),
    // so it gets the per-row injection + cancellation point. An unwind
    // abandons only the local `edges` matrix; closure_cache_ is untouched.
    LCDB_FAILPOINT("closure.build");
    GovernorCheckpoint();
    for (size_t v = 0; v < total; ++v) {
      for (size_t i = 0; i < m; ++i) {
        env[node.bound_vars[i]] = tuples[u][i];
        env[node.bound_vars[m + i]] = tuples[v][i];
      }
      edges[u][v] = EvalBool(body, env, senv);
    }
  }

  if (node.source_kind == NodeKind::kDtc) {
    // Keep only unique successors.
    for (size_t u = 0; u < total; ++u) {
      size_t successors = 0;
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v]) ++successors;
      }
      if (successors != 1) {
        std::fill(edges[u].begin(), edges[u].end(), false);
      }
    }
  }

  // Reflexive-transitive closure by BFS from every source.
  std::vector<std::vector<bool>> closure(total,
                                         std::vector<bool>(total, false));
  for (size_t source = 0; source < total; ++source) {
    std::deque<size_t> queue = {source};
    closure[source][source] = true;  // length-one sequence
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v] && !closure[source][v]) {
          closure[source][v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  stats_->closure_feasibility_queries +=
      CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  return closure_cache_.emplace(&node, std::move(closure)).first->second;
}

}  // namespace lcdb
