#ifndef LCDB_PLAN_OPTIMIZER_H_
#define LCDB_PLAN_OPTIMIZER_H_

#include "plan/plan_ir.h"
#include "plan/plan_stats.h"

namespace lcdb {

/// Deterministic pass pipeline over the plan IR. Passes run in a fixed
/// order; each preserves the executed answer formula *byte for byte*
/// (DESIGN.md, "Pass pipeline and its invariants"):
///
///  1. FoldConstants — compile-time evaluation of constant subplans using
///     the exact DnfFormula algebra the executor would apply, so folds are
///     representation-identical; branches dominated by a folded constant
///     are pruned (the kernel's feasibility oracle decides emptiness).
///  2. NarrowRegionPure — region-pure symbolic subtrees (whose value is
///     provably the canonical True(m)/False(m)) are re-lowered into
///     short-circuiting boolean mode under a single lift_bool bridge.
///  3. ReorderQuantifiers — same-polarity boolean region-quantifier chains
///     are re-ordered by estimated effective fan-out (single-variable
///     guard counts), most-guarded variable outermost.
///  4. HoistInvariants — loop-invariant conjuncts move out of boolean
///     region loops (and out of implication guards under forall), so a
///     failed guard skips the whole inner loop.
///  5. OrderConjuncts — boolean and/or chains re-ordered cheapest-first
///     (short-circuit friendly; operands are pure, so order is free).
///  6. CommonSubplanElimination — structurally identical subplans are
///     hash-consed into shared nodes, pooling their executor caches.
///  7. MarkCacheable — set-variable-independent subplans are marked for
///     per-region-key caching, hoisting them out of fixpoint iteration.
///     This pass *replaces* the legacy evaluator's ad-hoc memoization
///     check; with the pipeline disabled no subformula caching happens.
void OptimizePlan(CompiledPlan* plan, PlanPassStats* stats);

}  // namespace lcdb

#endif  // LCDB_PLAN_OPTIMIZER_H_
