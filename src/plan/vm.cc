#include "plan/vm.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <utility>

#include "analysis/bytecode_verify.h"
#include "constraint/canonical.h"
#include "constraint/simplify.h"
#include "core/pfp_cycle.h"
#include "core/resume.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/trace.h"
#include "geometry/convex_closure.h"
#include "plan/executor.h"
#include "qe/fourier_motzkin.h"
#include "util/failpoint.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// Same shape as the tree executor's ScopedOpTimer (executor.cc): used by
/// the VM's *native* member-operator engines (fixpoint, closure), whose
/// RAII unwind behaviour — record partial time, close the span — must match
/// the tree walk exactly. Bytecode-level kBeginOp/kEndOp brackets are
/// handled by the explicit op-frame stack instead.
class ScopedOpTimer {
 public:
  ScopedOpTimer(OpTimings* timings, PlanOp op)
      : timings_(timings), op_(op),
        span_(PlanOpName(op).c_str()),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedOpTimer() {
    OpTiming& slot = (*timings_)[PlanOpName(op_)];
    ++slot.count;
    slot.total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  }

 private:
  OpTimings* timings_;
  PlanOp op_;
  TraceSpan span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

BytecodeVm::BytecodeVm(const BytecodeProgram& program,
                       const RegionExtension& ext,
                       const Evaluator::Options& options,
                       Evaluator::Stats* stats)
    : program_(program), ext_(ext), options_(options), stats_(stats),
      num_columns_(program.num_columns),
      renv_(program.region_slot_names.size(), 0),
      senv_(program.set_slot_names.size()),
      icache_(program.num_icache_slots) {}

DnfFormula BytecodeVm::Run() {
  // The VM trusts operand bounds and bracket balance on its hot path (no
  // per-dispatch checks), so it refuses programs the tier-3 verifier has
  // not accepted. Options::verify off waives the gate for the ablation.
  if (options_.verify && !program_.verified) {
    throw QueryInterrupt(Status::Internal(
        "LCDB012: refusing to execute unverified bytecode program (run "
        "VerifyBytecode and set BytecodeProgram::verified)"));
  }
  // Same named injection site as PlanExecutor::Run — the backends are
  // interchangeable behind it (failpoint_test.cc, vm_test.cc).
  LCDB_FAILPOINT("plan.execute");
  try {
    DnfFormula result = CallSymProc(0);
    LCDB_CHECK(op_stack_.empty());
    return result;
  } catch (...) {
    // Close open operator brackets innermost-first, recording their partial
    // wall-clock — what the tree walk's ScopedOpTimer destructors do during
    // an unwind. Pending profile frames are discarded instead, matching
    // Profiled: a tripped node never produced a result to attribute.
    while (!op_stack_.empty()) CloseOpFrame();
    profile_stack_.clear();
    // The VM dies with this unwind; deposit completed fixpoint/closure
    // entries into the ambient resume collector (core/resume.h).
    HarvestResumeState();
    throw;
  }
}

void BytecodeVm::HarvestResumeState() {
  ResumeCollector* resume = CurrentResumeCollectorOrNull();
  if (resume == nullptr) return;
  for (const auto& entry : fixpoint_cache_) {
    if (uint64_t site = resume->SiteKey(entry.first)) {
      resume->CaptureCompletedFixpoint(site, entry.second);
    }
  }
  for (const auto& entry : closure_cache_) {
    if (uint64_t site = resume->SiteKey(entry.first)) {
      resume->CaptureCompletedClosure(site, entry.second);
    }
  }
}

DnfFormula BytecodeVm::CallSymProc(uint32_t proc_id) {
  const VmProc& proc = program_.procs[proc_id];
  const size_t sb = sregs_.size(), bb = bregs_.size(), ib = iregs_.size();
  sregs_.resize(sb + proc.num_sregs, DnfFormula::False(0));
  bregs_.resize(bb + proc.num_bregs, 0);
  iregs_.resize(ib + proc.num_iregs, 0);
  Dispatch(proc, sb, bb, ib);
  DnfFormula result = std::move(sregs_[sb]);
  sregs_.erase(sregs_.begin() + sb, sregs_.end());
  bregs_.erase(bregs_.begin() + bb, bregs_.end());
  iregs_.erase(iregs_.begin() + ib, iregs_.end());
  return result;
}

bool BytecodeVm::CallBoolProc(uint32_t proc_id) {
  const VmProc& proc = program_.procs[proc_id];
  const size_t sb = sregs_.size(), bb = bregs_.size(), ib = iregs_.size();
  sregs_.resize(sb + proc.num_sregs, DnfFormula::False(0));
  bregs_.resize(bb + proc.num_bregs, 0);
  iregs_.resize(ib + proc.num_iregs, 0);
  Dispatch(proc, sb, bb, ib);
  const bool result = bregs_[bb] != 0;
  sregs_.erase(sregs_.begin() + sb, sregs_.end());
  bregs_.erase(bregs_.begin() + bb, bregs_.end());
  iregs_.erase(iregs_.begin() + ib, iregs_.end());
  return result;
}

void BytecodeVm::BuildKey(const VmMemoDesc& desc, Tuple* key) const {
  key->clear();
  key->reserve(desc.region_slots.size() + desc.set_slots.size());
  for (uint32_t slot : desc.region_slots) key->push_back(renv_[slot]);
  for (uint32_t slot : desc.set_slots) key->push_back(senv_[slot].version);
}

std::string BytecodeVm::Fingerprint(const DnfFormula& f) const {
  std::string key;
  for (const Conjunction& c : f.disjuncts()) {
    key += CanonicalizeConjunction(c).encoding;
    key += ';';
  }
  return key;
}

bool BytecodeVm::IcacheLookup(uint32_t slot, const std::string& key,
                              bool* verdict) {
  IcacheSlot& s = icache_[slot];
  const ConstraintKernel* kernel = &CurrentKernel();
  const uint64_t epoch = kernel->CacheEpoch();
  if (s.kernel != nullptr && (s.kernel != kernel || s.epoch != epoch)) {
    // A ScopedKernel swap changed the ambient oracle under us, or the
    // kernel's caches were cleared / lemma-invalidated since the fill: the
    // cached verdict belongs to a retired cache generation, drop it.
    ++stats_->vm.icache_invalidations;
    s.kernel = nullptr;
    s.key.clear();
  }
  if (s.kernel == kernel && s.key == key) {
    ++stats_->vm.icache_hits;
    *verdict = s.verdict;
    return true;
  }
  ++stats_->vm.icache_misses;
  return false;
}

void BytecodeVm::IcacheStore(uint32_t slot, std::string key, bool verdict) {
  IcacheSlot& s = icache_[slot];
  s.kernel = &CurrentKernel();
  s.epoch = s.kernel->CacheEpoch();
  s.key = std::move(key);
  s.verdict = verdict;
}

void BytecodeVm::PushOpFrame(const PlanNode& node) {
  OpFrame frame;
  frame.op = node.op;
  frame.tracer = ActiveTracerOrNull();
  if (frame.tracer != nullptr) {
    frame.span_id = frame.tracer->BeginSpan(PlanOpName(node.op).c_str());
  }
  frame.start = std::chrono::steady_clock::now();
  op_stack_.push_back(std::move(frame));
}

void BytecodeVm::CloseOpFrame() {
  OpFrame frame = std::move(op_stack_.back());
  op_stack_.pop_back();
  OpTiming& slot = stats_->op_timings[PlanOpName(frame.op)];
  ++slot.count;
  slot.total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - frame.start)
                       .count();
  if (frame.tracer != nullptr) frame.tracer->EndSpan(frame.span_id);
}

void BytecodeVm::Dispatch(const VmProc& proc, size_t sb, size_t bb,
                          size_t ib) {
  const VmInstr* code = proc.code.data();
  const size_t n = proc.code.size();
  // Frame-relative register views. The stacks never reallocate inside one
  // Dispatch: every growth happens inside a nested Call/member helper,
  // which restores the exact size before returning — so raw pointers would
  // be safe, but index math keeps the unwind paths trivially correct.
  auto S = [&](uint32_t r) -> DnfFormula& { return sregs_[sb + r]; };
  auto B = [&](uint32_t r) -> uint8_t& { return bregs_[bb + r]; };
  auto I = [&](uint32_t r) -> size_t& { return iregs_[ib + r]; };

  Tuple key;
  size_t pc = 0;
  while (pc < n) {
    const VmInstr& in = code[pc];
    ++stats_->vm.instructions;
    switch (in.op) {
      // ---- Node entry / exit.
      case VmOp::kEnterSym:
      case VmOp::kEnterBool: {
        const bool symbolic = in.op == VmOp::kEnterSym;
        GovernorCheckpoint();
        if (symbolic) {
          ++stats_->node_evaluations;
        } else {
          ++stats_->bool_evaluations;
        }
        const PlanNode* node = in.node;
        if (profile_ != nullptr) ++(*profile_)[node].calls;
        if (in.imm != 0 && options_.memoize) {
          BuildKey(program_.memo_descs[in.imm - 1], &key);
          if (symbolic) {
            auto& per_node = memo_[node];
            auto it = per_node.find(key);
            if (it != per_node.end()) {
              ++stats_->memo_hits;
              if (profile_ != nullptr) ++(*profile_)[node].memo_hits;
              if (IsTimedPlanOp(node->op)) {
                ++stats_->op_timings[PlanOpName(node->op)].memo_hits;
              }
              S(in.a) = it->second;
              pc = in.b;
              continue;
            }
          } else {
            auto& per_node = bool_memo_[node];
            auto it = per_node.find(key);
            if (it != per_node.end()) {
              ++stats_->memo_hits;
              if (profile_ != nullptr) ++(*profile_)[node].memo_hits;
              if (IsTimedPlanOp(node->op)) {
                ++stats_->op_timings[PlanOpName(node->op)].memo_hits;
              }
              B(in.a) = it->second ? 1 : 0;
              pc = in.b;
              continue;
            }
          }
        }
        if (profile_ != nullptr) {
          ProfileFrame frame;
          frame.node = node;
          frame.kernel_before = CurrentKernel().stats();
          QueryGovernor* governor = CurrentGovernorOrNull();
          frame.governed = governor != nullptr;
          frame.checkpoints_before =
              governor != nullptr ? governor->stats().checkpoints : 0;
          frame.start = std::chrono::steady_clock::now();
          profile_stack_.push_back(std::move(frame));
        }
        break;
      }
      case VmOp::kLeaveSym:
      case VmOp::kLeaveBool: {
        const bool symbolic = in.op == VmOp::kLeaveSym;
        if (profile_ != nullptr) {
          ProfileFrame frame = std::move(profile_stack_.back());
          profile_stack_.pop_back();
          PlanNodeProfile& p = (*profile_)[frame.node];
          p.total_ns +=
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - frame.start)
                  .count();
          const KernelStats after = CurrentKernel().stats();
          p.kernel_queries += (after.feasibility_queries -
                               frame.kernel_before.feasibility_queries) +
                              (after.implication_queries -
                               frame.kernel_before.implication_queries);
          p.kernel_cache_hits +=
              (after.cache_hits - frame.kernel_before.cache_hits) +
              (after.implication_cache_hits -
               frame.kernel_before.implication_cache_hits);
          QueryGovernor* governor = CurrentGovernorOrNull();
          if (frame.governed && governor != nullptr) {
            p.governor_checkpoints +=
                governor->stats().checkpoints - frame.checkpoints_before;
          }
          p.rows = symbolic ? S(in.a).disjuncts().size() : (B(in.a) ? 1 : 0);
        }
        if (in.imm != 0 && options_.memoize) {
          // Rebuilding the key here is sound: the node's free variables are
          // bound by *ancestors*, and the typechecker's no-shadowing rule
          // means no descendant loop can have rewritten their slots.
          BuildKey(program_.memo_descs[in.imm - 1], &key);
          if (symbolic) {
            memo_[in.node].emplace(key, S(in.a));
          } else {
            bool_memo_[in.node].emplace(key, B(in.a) != 0);
          }
        }
        break;
      }
      // ---- Symbolic producers.
      case VmOp::kConstFormula:
        S(in.a) = *in.node->const_formula;
        break;
      case VmOp::kInRegion: {
        const Conjunction& region = ext_.RegionFormula(renv_[in.b]);
        DnfFormula region_formula(region.num_vars(), {region});
        S(in.a) = region_formula.Substitute(in.node->subst, num_columns_);
        break;
      }
      case VmOp::kLiftBool:
        S(in.a) = B(in.b) != 0 ? DnfFormula::True(num_columns_)
                               : DnfFormula::False(num_columns_);
        break;
      case VmOp::kNegSym:
        S(in.a) = S(in.a).Negate();
        break;
      case VmOp::kAndSym:
        S(in.a) = S(in.a).And(S(in.b));
        break;
      case VmOp::kOrSym:
        S(in.a) = S(in.a).Or(S(in.b));
        break;
      case VmOp::kIffSym: {
        const DnfFormula& a = S(in.a);
        const DnfFormula& b = S(in.b);
        DnfFormula result = a.And(b).Or(a.Negate().And(b.Negate()));
        S(in.a) = std::move(result);
        break;
      }
      case VmOp::kLoadTrueSym:
        S(in.a) = DnfFormula::True(num_columns_);
        break;
      case VmOp::kLoadFalseSym:
        S(in.a) = DnfFormula::False(num_columns_);
        break;
      case VmOp::kHullFinish: {
        DnfFormula projected =
            S(in.b).Substitute(in.node->hull_project, in.node->hull_arity);
        Result<DnfFormula> hull = ConvexClosure(projected);
        LCDB_CHECK_MSG(hull.ok(), "convex closure failed");
        S(in.a) = hull->Substitute(in.node->subst, num_columns_);
        break;
      }
      case VmOp::kQeExists:
        S(in.a) = ExistsVariable(S(in.b), in.node->column);
        break;
      case VmOp::kQeForall:
        S(in.a) = ForallVariable(S(in.b), in.node->column);
        break;
      // ---- Boolean producers.
      case VmOp::kLoadBool:
        B(in.a) = static_cast<uint8_t>(in.imm);
        break;
      case VmOp::kNotBool:
        B(in.a) = B(in.a) != 0 ? 0 : 1;
        break;
      case VmOp::kEqBool:
        B(in.a) = (B(in.a) != 0) == (B(in.b) != 0) ? 1 : 0;
        break;
      case VmOp::kRegionAtom: {
        const PlanNode& node = *in.node;
        bool result = false;
        switch (node.source_kind) {
          case NodeKind::kAdjacent:
            result = ext_.Adjacent(renv_[in.b], renv_[in.c]);
            break;
          case NodeKind::kRegionEq:
            result = renv_[in.b] == renv_[in.c];
            break;
          case NodeKind::kSubsetS:
            result = ext_.RegionSubsetOfS(renv_[in.b]);
            break;
          case NodeKind::kIntersectsS:
            result = ext_.RegionIntersectsS(renv_[in.b]);
            break;
          case NodeKind::kDimAtom:
            result = ext_.RegionDim(renv_[in.b]) == node.dim_value;
            break;
          case NodeKind::kBoundedAtom:
            result = ext_.RegionBounded(renv_[in.b]);
            break;
          default:
            LCDB_CHECK_MSG(false, "not a region atom");
        }
        B(in.a) = result ? 1 : 0;
        break;
      }
      case VmOp::kSetMember: {
        const VmSlotList& list = program_.slot_lists[in.imm];
        const SetBinding& binding = senv_[in.b];
        LCDB_CHECK(binding.tuples != nullptr);
        Tuple tuple;
        tuple.reserve(list.size());
        for (uint32_t slot : list) tuple.push_back(renv_[slot]);
        B(in.a) = binding.tuples->count(tuple) > 0 ? 1 : 0;
        break;
      }
      case VmOp::kFixpointMember: {
        const VmFixpointSite& site = program_.fixpoint_sites[in.imm];
        const TupleSet& fp = FixpointSet(site, *in.node);
        Tuple tuple;
        tuple.reserve(site.arg_slots.size());
        for (uint32_t slot : site.arg_slots) tuple.push_back(renv_[slot]);
        B(in.a) = fp.count(tuple) > 0 ? 1 : 0;
        break;
      }
      case VmOp::kClosureMember: {
        const VmClosureSite& site = program_.closure_sites[in.imm];
        const auto& closure = ClosureMatrix(site, *in.node);
        Tuple from, to;
        for (uint32_t slot : site.arg_slots) from.push_back(renv_[slot]);
        for (uint32_t slot : site.arg2_slots) to.push_back(renv_[slot]);
        B(in.a) = closure[TupleIndex(from)][TupleIndex(to)] ? 1 : 0;
        break;
      }
      case VmOp::kRbitFinish:
        B(in.a) = EvalRbitFinish(in, S(in.b)) ? 1 : 0;
        break;
      case VmOp::kNonEmpty: {
        const DnfFormula& f = S(in.b);
        bool nonempty;
        if (f.disjuncts().size() > kIcacheMaxDisjuncts) {
          ++stats_->vm.icache_bypasses;
          nonempty = !f.IsEmpty();
        } else {
          std::string fp_key = Fingerprint(f);
          if (!IcacheLookup(in.c, fp_key, &nonempty)) {
            nonempty = !f.IsEmpty();
            IcacheStore(in.c, std::move(fp_key), nonempty);
          }
        }
        B(in.a) = nonempty ? 1 : 0;
        break;
      }
      // ---- Control flow.
      case VmOp::kJmp:
        pc = in.b;
        continue;
      case VmOp::kJmpIfSymFalse:
        if (S(in.a).IsSyntacticallyFalse()) {
          pc = in.b;
          continue;
        }
        break;
      case VmOp::kJmpIfSymTrue:
        if (S(in.a).IsSyntacticallyTrue()) {
          pc = in.b;
          continue;
        }
        break;
      case VmOp::kJmpIfFalseBool:
        if (B(in.a) == 0) {
          pc = in.b;
          continue;
        }
        break;
      case VmOp::kJmpIfTrueBool:
        if (B(in.a) != 0) {
          pc = in.b;
          continue;
        }
        break;
      case VmOp::kLoadImm:
        I(in.a) = in.imm;
        break;
      case VmOp::kLoopHead:
        if (I(in.a) >= ext_.num_regions()) {
          pc = in.b;
          continue;
        }
        // The lowering emits stride 0 (body Enter instructions already
        // checkpoint at the tree cadence); a nonzero stride adds an extra
        // checkpoint every `imm` iterations for bodies without Enter sites.
        if (in.imm != 0 && I(in.a) % in.imm == 0) GovernorCheckpoint();
        break;
      case VmOp::kLoopNext:
        ++I(in.a);
        pc = in.b;
        continue;
      case VmOp::kSetRegion:
        renv_[in.a] = I(in.b);
        break;
      // ---- Operator accounting.
      case VmOp::kBeginOp:
        if (in.imm & kOpCountQe) ++stats_->qe_eliminations;
        if (in.imm & kOpCountExpand) ++stats_->region_expansions;
        if (in.imm & kOpTimed) PushOpFrame(*in.node);
        break;
      case VmOp::kEndOp:
        CloseOpFrame();
        break;
      // ---- Procedures.
      case VmOp::kCallSym:
        S(in.a) = CallSymProc(in.imm);
        break;
      case VmOp::kCallBool:
        B(in.a) = CallBoolProc(in.imm) ? 1 : 0;
        break;
      case VmOp::kRet:
      case VmOp::kHalt:
        return;
    }
    ++pc;
  }
}

/// rBIT epilogue (Definition 5.1) over the already-evaluated body formula;
/// same algorithm as PlanExecutor::EvalRbit with the implication verdict
/// behind this site's inline cache.
bool BytecodeVm::EvalRbitFinish(const VmInstr& in, const DnfFormula& body) {
  const PlanNode& node = *in.node;
  const size_t col = node.column;
  for (size_t c = 0; c < num_columns_; ++c) {
    if (c != col && VariableOccurs(body, c)) {
      LCDB_CHECK_MSG(false, "rBIT body depends on another element variable");
    }
  }
  Vec witness = body.FindWitness();
  if (witness.empty()) return false;  // empty set: no unique rational
  const Rational a = witness[col];
  Vec point_coeffs(num_columns_);
  point_coeffs[col] = Rational(1);
  DnfFormula exactly_a =
      DnfFormula::FromAtom(LinearAtom(point_coeffs, RelOp::kEq, a));

  bool implied;
  if (body.disjuncts().size() > kIcacheMaxDisjuncts) {
    ++stats_->vm.icache_bypasses;
    implied = Implies(body, exactly_a);
  } else {
    std::string key = Fingerprint(body);
    key += "=>";
    key += Fingerprint(exactly_a);
    if (!IcacheLookup(in.c, key, &implied)) {
      implied = Implies(body, exactly_a);
      IcacheStore(in.c, std::move(key), implied);
    }
  }
  if (!implied) return false;  // more than one value

  const VmRbitSite& site = program_.rbit_sites[in.imm];
  const size_t rn = renv_[site.rn_slot];
  const size_t rd = renv_[site.rd_slot];
  if (a.IsZero()) {
    return rn == rd && ext_.RegionDim(rn) > 0;
  }
  if (ext_.RegionDim(rn) != 0 || ext_.RegionDim(rd) != 0) return false;
  const size_t i = ext_.ZeroDimRank(rn);
  const size_t j = ext_.ZeroDimRank(rd);
  return a.num().Bit(i) && a.den().Bit(j);
}

size_t BytecodeVm::TupleIndex(const Tuple& tuple) const {
  const size_t n = ext_.num_regions();
  size_t index = 0;
  for (size_t v : tuple) {
    LCDB_CHECK(v < n);
    index = index * n + v;
  }
  return index;
}

/// Kleene iteration of [LFP/IFP/PFP_{M, X̄} body], the PlanExecutor
/// algorithm with the boolean body invoked as a proc. Stage-version stamps,
/// iteration order and failpoint/governor placement are identical, so memo
/// hit patterns and trip points match the tree walk.
const BytecodeVm::TupleSet& BytecodeVm::FixpointSet(
    const VmFixpointSite& site, const PlanNode& node) {
  auto cached = fixpoint_cache_.find(&node);
  if (cached != fixpoint_cache_.end()) return cached->second;

  // Resume fast path (core/resume.h): site keys are plan-node ordinals, so
  // a checkpoint taken under the tree executor restores here and vice versa.
  ResumeCollector* resume = CurrentResumeCollectorOrNull();
  const uint64_t resume_site = resume != nullptr ? resume->SiteKey(&node) : 0;
  if (resume_site != 0) {
    if (const TupleSet* done = resume->CompletedFixpoint(resume_site)) {
      ++stats_->resume_sets_restored;
      return fixpoint_cache_.emplace(&node, *done).first->second;
    }
  }

  ScopedOpTimer timer(&stats_->op_timings, node.op);
  ++stats_->fixpoints_computed;
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t k = site.bound_slots.size();
  const size_t n = ext_.num_regions();
  size_t space = 1;
  for (size_t i = 0; i < k; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "fixed-point tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "fixed-point");

  const bool is_pfp = node.source_kind == NodeKind::kPfp;

  auto kleene_stage = [&](const TupleSet& cur) {
    TupleSet next;
    if (!is_pfp) next = cur;
    senv_[site.set_slot] = SetBinding{&cur, ++set_version_counter_};
    Tuple tuple(k, 0);
    bool done_tuples = (n == 0);
    while (!done_tuples) {
      if (is_pfp || !next.count(tuple)) {
        for (size_t i = 0; i < k; ++i) renv_[site.bound_slots[i]] = tuple[i];
        if (CallBoolProc(site.body_proc)) next.insert(tuple);
      }
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) break;
        tuple[pos] = 0;
        if (pos == 0) done_tuples = true;
      }
      if (k == 0) done_tuples = true;
    }
    return next;
  };

  auto account = [&] {
    stats_->fixpoint_feasibility_queries +=
        CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  };

  TupleSet current;
  size_t iteration = 0;
  PfpCycleDetector cycle;
  if (resume_site != 0) {
    // Continue an interrupted Kleene loop from its last completed stage
    // (pure in the environment by Definition 5.1; see core/fixpoint.cc).
    FixpointResumePoint point;
    if (resume->TakeInProgress(resume_site, &point)) {
      current = std::move(point.approximation);
      iteration = point.iteration;
      cycle.SeedHashes(point.pfp_hashes);
      ++stats_->resume_fixpoints_resumed;
      stats_->resume_stages_skipped += point.iteration;
    }
  }
  try {
    for (;; ++iteration) {
      LCDB_FAILPOINT("fixpoint.stage");
      GovernorOnFixpointIteration();
      if (is_pfp) {
        if (iteration > options_.max_pfp_iterations) {
          throw QueryInterrupt(Status::ResourceExhausted(
              "PFP exceeded max_pfp_iterations (" +
              std::to_string(options_.max_pfp_iterations) + ")"));
        }
        if (cycle.SeenBefore(current, iteration, kleene_stage)) {
          account();
          return fixpoint_cache_.emplace(&node, TupleSet{}).first->second;
        }
      }
      ++stats_->fixpoint_iterations;
      TupleSet next;
      {
        TraceSpan stage_span("fixpoint.stage");
        next = kleene_stage(current);
        stage_span.Counter("iteration", iteration);
        stage_span.Counter("tuples", next.size());
      }
      if (next == current) break;
      current = std::move(next);
    }
  } catch (const QueryInterrupt&) {
    // Checkpoint the last completed stage; a mid-stage interrupt only
    // discards the partial `next` local to kleene_stage.
    if (resume_site != 0) {
      std::vector<uint64_t> pfp_hashes =
          is_pfp ? cycle.ExportHashes(current) : std::vector<uint64_t>{};
      resume->CaptureInProgress(resume_site, std::move(current), iteration,
                                std::move(pfp_hashes));
    }
    throw;
  }
  account();
  return fixpoint_cache_.emplace(&node, std::move(current)).first->second;
}

/// TC/DTC reachability bitmap, the PlanExecutor algorithm with the edge
/// body invoked as a proc (same per-row failpoint + checkpoint placement).
const std::vector<std::vector<bool>>& BytecodeVm::ClosureMatrix(
    const VmClosureSite& site, const PlanNode& node) {
  auto cached = closure_cache_.find(&node);
  if (cached != closure_cache_.end()) return cached->second;

  // Resume fast path (core/resume.h): completed-matrix granularity only.
  if (ResumeCollector* resume = CurrentResumeCollectorOrNull()) {
    if (uint64_t resume_site = resume->SiteKey(&node)) {
      if (const auto* done = resume->CompletedClosure(resume_site)) {
        ++stats_->resume_sets_restored;
        return closure_cache_.emplace(&node, *done).first->second;
      }
    }
  }

  ScopedOpTimer timer(&stats_->op_timings, node.op);
  ++stats_->closures_computed;
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t m = site.bound_slots.size() / 2;
  const size_t n = ext_.num_regions();
  size_t space = 1;
  for (size_t i = 0; i < m; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "TC tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "closure");

  std::vector<Tuple> tuples;
  tuples.reserve(space);
  Tuple tuple(m, 0);
  if (n > 0) {
    while (true) {
      tuples.push_back(tuple);
      size_t pos = m;
      bool advanced = false;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) {
          advanced = true;
          break;
        }
        tuple[pos] = 0;
      }
      if (!advanced) break;
    }
  }
  const size_t total = tuples.size();

  std::vector<std::vector<bool>> edges(total, std::vector<bool>(total, false));
  for (size_t u = 0; u < total; ++u) {
    LCDB_FAILPOINT("closure.build");
    GovernorCheckpoint();
    for (size_t v = 0; v < total; ++v) {
      for (size_t i = 0; i < m; ++i) {
        renv_[site.bound_slots[i]] = tuples[u][i];
        renv_[site.bound_slots[m + i]] = tuples[v][i];
      }
      edges[u][v] = CallBoolProc(site.body_proc);
    }
  }

  if (node.source_kind == NodeKind::kDtc) {
    for (size_t u = 0; u < total; ++u) {
      size_t successors = 0;
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v]) ++successors;
      }
      if (successors != 1) {
        std::fill(edges[u].begin(), edges[u].end(), false);
      }
    }
  }

  std::vector<std::vector<bool>> closure(total,
                                         std::vector<bool>(total, false));
  for (size_t source = 0; source < total; ++source) {
    std::deque<size_t> queue = {source};
    closure[source][source] = true;
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v] && !closure[source][v]) {
          closure[source][v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  stats_->closure_feasibility_queries +=
      CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  return closure_cache_.emplace(&node, std::move(closure)).first->second;
}

DnfFormula ExecutePlan(const CompiledPlan& plan, const RegionExtension& ext,
                       const Evaluator::Options& options,
                       Evaluator::Stats* stats, PlanProfile* profile) {
  if (options.use_bytecode) {
    BytecodeProgram program;
    {
      TraceSpan span("plan.lower");
      program = CompileToBytecode(plan);
      span.Counter("procs", program.procs.size());
      span.Counter("instructions", program.TotalInstructions());
    }
    stats->vm.procs = program.procs.size();
    stats->vm.code_instructions = program.TotalInstructions();
    // Tier-3 gate at lowering: the VM below refuses unverified programs,
    // so a lowering bug becomes a clean LCDB012 instead of a register-file
    // overrun inside the dispatch loop.
    if (options.verify) {
      TraceSpan span("bytecode.verify");
      BytecodeVerifyResult verdict = VerifyBytecode(program);
      AccumulateVerifyStats(verdict, &stats->verify);
      if (!verdict.status.ok()) throw QueryInterrupt(verdict.status);
      span.Counter("instructions", verdict.instructions_verified);
      program.verified = true;
    }
    BytecodeVm vm(program, ext, options, stats);
    if (profile != nullptr) vm.EnableProfiling(profile);
    return vm.Run();
  }
  PlanExecutor executor(plan, ext, options, stats);
  if (profile != nullptr) executor.EnableProfiling(profile);
  return executor.Run();
}

}  // namespace lcdb
