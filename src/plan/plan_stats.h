#ifndef LCDB_PLAN_PLAN_STATS_H_
#define LCDB_PLAN_PLAN_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace lcdb {

/// Per-pass telemetry of the plan optimizer (plan/optimizer.h). Each counter
/// is the number of rewrites one pass performed while compiling one query;
/// together they explain *why* an optimized execution visits fewer nodes
/// than the raw lowering (EXPERIMENTS.md, "Optimizer-counter telemetry").
struct PlanPassStats {
  /// Nodes in the final (optimized, shared) plan DAG.
  size_t plan_nodes = 0;
  /// Constant subplans folded at compile time (dead-branch pruning; the
  /// folds use the kernel's feasibility oracle through DnfFormula algebra).
  size_t folded_constants = 0;
  /// Branches of and/or/implies nodes discarded because a sibling folded to
  /// a dominating constant.
  size_t pruned_branches = 0;
  /// Region-pure symbolic subtrees narrowed to boolean evaluation mode.
  size_t narrowed_subtrees = 0;
  /// Same-polarity region-quantifier chains whose loop order was changed
  /// by the estimated-fan-out heuristic.
  size_t reordered_quantifiers = 0;
  /// Loop-invariant conjuncts hoisted out of region-quantifier loops.
  size_t hoisted_invariants = 0;
  /// and/or chains whose operands were re-ordered cheapest-first.
  size_t reordered_conjuncts = 0;
  /// Structurally identical subplans merged by common-subplan elimination.
  size_t cse_merged = 0;
  /// Nodes the hoisting pass marked cacheable (replaces the legacy
  /// evaluator's ad-hoc WorthCaching/MemoKey test).
  size_t cacheable_marked = 0;

  std::string ToString() const {
    std::string out = "plan_nodes=" + std::to_string(plan_nodes);
    out += " folded=" + std::to_string(folded_constants);
    out += " pruned=" + std::to_string(pruned_branches);
    out += " narrowed=" + std::to_string(narrowed_subtrees);
    out += " reordered_quantifiers=" + std::to_string(reordered_quantifiers);
    out += " hoisted=" + std::to_string(hoisted_invariants);
    out += " reordered_conjuncts=" + std::to_string(reordered_conjuncts);
    out += " cse_merged=" + std::to_string(cse_merged);
    out += " cacheable=" + std::to_string(cacheable_marked);
    return out;
  }
};

/// Wall-clock attribution of one evaluation to coarse plan operators
/// (fixpoint iteration, closure construction, QE, region expansion, hull,
/// rBIT). Only the expensive operators are timed; cheap connective visits
/// are counted but not clocked.
struct OpTiming {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

using OpTimings = std::map<std::string, OpTiming>;

struct PlanNode;

/// Measured execution profile of one plan node (EXPLAIN ANALYZE). All
/// quantities are *inclusive* — a parent's time/queries contain its
/// children's — matching how the span tree nests. Collected only when the
/// executor runs with profiling enabled; the normal path never touches it.
struct PlanNodeProfile {
  /// Evaluations of this node (cache hits included in `calls`, broken out
  /// in `memo_hits`).
  uint64_t calls = 0;
  uint64_t memo_hits = 0;
  /// Inclusive wall-clock of the non-cached evaluations.
  uint64_t total_ns = 0;
  /// Kernel decisions issued below this node (feasibility + implication),
  /// and how many of those the kernel's caches answered.
  uint64_t kernel_queries = 0;
  uint64_t kernel_cache_hits = 0;
  /// Governor checkpoints passed below this node (0 when ungoverned).
  uint64_t governor_checkpoints = 0;
  /// Result cardinality of the last evaluation: disjuncts for symbolic
  /// nodes, 0/1 for boolean ones.
  uint64_t rows = 0;
};

/// Per-node profile of one plan execution, keyed by node identity (plan
/// nodes are shared DAG nodes kept alive by the CompiledPlan).
using PlanProfile = std::map<const PlanNode*, PlanNodeProfile>;

}  // namespace lcdb

#endif  // LCDB_PLAN_PLAN_STATS_H_
