#ifndef LCDB_PLAN_PLAN_STATS_H_
#define LCDB_PLAN_PLAN_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace lcdb {

/// Per-pass telemetry of the plan optimizer (plan/optimizer.h). Each counter
/// is the number of rewrites one pass performed while compiling one query;
/// together they explain *why* an optimized execution visits fewer nodes
/// than the raw lowering (EXPERIMENTS.md, "Optimizer-counter telemetry").
struct PlanPassStats {
  /// Nodes in the final (optimized, shared) plan DAG.
  size_t plan_nodes = 0;
  /// Constant subplans folded at compile time (dead-branch pruning; the
  /// folds use the kernel's feasibility oracle through DnfFormula algebra).
  size_t folded_constants = 0;
  /// Branches of and/or/implies nodes discarded because a sibling folded to
  /// a dominating constant.
  size_t pruned_branches = 0;
  /// Region-pure symbolic subtrees narrowed to boolean evaluation mode.
  size_t narrowed_subtrees = 0;
  /// Same-polarity region-quantifier chains whose loop order was changed
  /// by the estimated-fan-out heuristic.
  size_t reordered_quantifiers = 0;
  /// Loop-invariant conjuncts hoisted out of region-quantifier loops.
  size_t hoisted_invariants = 0;
  /// and/or chains whose operands were re-ordered cheapest-first.
  size_t reordered_conjuncts = 0;
  /// Structurally identical subplans merged by common-subplan elimination.
  size_t cse_merged = 0;
  /// Nodes the hoisting pass marked cacheable (replaces the legacy
  /// evaluator's ad-hoc WorthCaching/MemoKey test).
  size_t cacheable_marked = 0;

  std::string ToString() const {
    std::string out = "plan_nodes=" + std::to_string(plan_nodes);
    out += " folded=" + std::to_string(folded_constants);
    out += " pruned=" + std::to_string(pruned_branches);
    out += " narrowed=" + std::to_string(narrowed_subtrees);
    out += " reordered_quantifiers=" + std::to_string(reordered_quantifiers);
    out += " hoisted=" + std::to_string(hoisted_invariants);
    out += " reordered_conjuncts=" + std::to_string(reordered_conjuncts);
    out += " cse_merged=" + std::to_string(cse_merged);
    out += " cacheable=" + std::to_string(cacheable_marked);
    return out;
  }
};

/// Wall-clock attribution of one evaluation to coarse plan operators
/// (fixpoint iteration, closure construction, QE, region expansion, hull,
/// rBIT). Only the expensive operators are timed; cheap connective visits
/// are counted but not clocked.
struct OpTiming {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  /// Evaluations of this operator served from the executor memo instead of
  /// running (and being timed). Without this the time a memoized re-visit
  /// *saves* silently inflates the parent's inclusive share — breaking out
  /// the hit count keeps tree and VM profiles comparable.
  uint64_t memo_hits = 0;
};

using OpTimings = std::map<std::string, OpTiming>;

/// Telemetry of one bytecode-VM execution (plan/vm.h). Zero when the tree
/// backend ran; reset at each Evaluate entry like op_timings.
struct VmStats {
  /// Instructions the dispatch loop executed.
  uint64_t instructions = 0;
  /// Inline-cache outcomes at kernel call sites (kNonEmpty / kRbitFinish):
  /// hits skip the kernel entirely; invalidations are kernel swaps observed
  /// under ScopedKernel; bypasses are formulas over the disjunct cap.
  uint64_t icache_hits = 0;
  uint64_t icache_misses = 0;
  uint64_t icache_invalidations = 0;
  uint64_t icache_bypasses = 0;
  /// Shape of the lowered program (gauges): procedures and total code size.
  uint64_t procs = 0;
  uint64_t code_instructions = 0;
};

struct PlanNode;

/// Tier-2 cost estimate of one plan node (analysis/plan_cost.h). All
/// quantities are deterministic functions of the plan shape and the region
/// count — no wall-clock, no randomness — so EXPLAIN output is byte-stable.
struct PlanCostEstimate {
  /// Evaluations one execution performs (after the memo collapses repeats).
  double est_calls = 0;
  /// Result disjuncts of one evaluation (symbolic nodes; 1 for boolean).
  double est_rows = 0;
  /// Node-local BigInt operations over all evaluations (children excluded —
  /// their own entries carry them).
  double est_bigint_ops = 0;
  /// Cache-marked but the estimate says no memo key can ever repeat
  /// (LCDB011).
  bool dead_cache = false;
};

/// Per-node cost estimates keyed by node identity, like PlanProfile.
using PlanCostMap = std::map<const PlanNode*, PlanCostEstimate>;

/// Tier-2 (plan-level) cost-analyzer telemetry (analysis/plan_cost.h),
/// aggregated over the optimized plan of the most recent compile. The
/// estimates use the Grimson–Heintz–Kuijpers cost unit: BigInt arithmetic
/// operations, the native cost of linear-constraint evaluation.
struct PlanCostStats {
  /// Nodes the cost pass visited (== optimized plan DAG nodes).
  uint64_t nodes = 0;
  /// Estimated total BigInt operations of one execution (capped).
  uint64_t total_bigint_ops = 0;
  /// Estimated disjunct count of the answer formula.
  uint64_t est_answer_rows = 0;
  /// Cache-marked nodes whose estimated calls can never repeat a memo key
  /// (each emitted as an LCDB011 warning).
  uint64_t dead_caches = 0;
  /// Diagnostics the pass emitted (LCDB011 dead caches + cost-refined
  /// LCDB004 budget warnings).
  uint64_t warnings = 0;
};

/// Measured execution profile of one plan node (EXPLAIN ANALYZE). All
/// quantities are *inclusive* — a parent's time/queries contain its
/// children's — matching how the span tree nests. Collected only when the
/// executor runs with profiling enabled; the normal path never touches it.
struct PlanNodeProfile {
  /// Evaluations of this node (cache hits included in `calls`, broken out
  /// in `memo_hits`).
  uint64_t calls = 0;
  uint64_t memo_hits = 0;
  /// Inclusive wall-clock of the non-cached evaluations.
  uint64_t total_ns = 0;
  /// Kernel decisions issued below this node (feasibility + implication),
  /// and how many of those the kernel's caches answered.
  uint64_t kernel_queries = 0;
  uint64_t kernel_cache_hits = 0;
  /// Governor checkpoints passed below this node (0 when ungoverned).
  uint64_t governor_checkpoints = 0;
  /// Result cardinality of the last evaluation: disjuncts for symbolic
  /// nodes, 0/1 for boolean ones.
  uint64_t rows = 0;
};

/// Per-node profile of one plan execution, keyed by node identity (plan
/// nodes are shared DAG nodes kept alive by the CompiledPlan).
using PlanProfile = std::map<const PlanNode*, PlanNodeProfile>;

}  // namespace lcdb

#endif  // LCDB_PLAN_PLAN_STATS_H_
