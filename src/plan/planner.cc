#include "plan/planner.h"

#include <utility>

#include "util/status.h"

namespace lcdb {

namespace {

class Planner {
 public:
  Planner(const TypeInfo& info, const RegionExtension& ext)
      : info_(info), ext_(ext), num_columns_(info.all_element_vars.size()) {}

  size_t num_columns() const { return num_columns_; }

  /// Symbolic lowering: the node's value is a DnfFormula.
  PlanPtr Lower(const FormulaNode& node) {
    const size_t m = num_columns_;
    switch (node.kind) {
      case NodeKind::kTrue:
        return Constant(DnfFormula::True(m));
      case NodeKind::kFalse:
        return Constant(DnfFormula::False(m));
      case NodeKind::kCompare: {
        ElementTerm diff = node.lhs.Minus(node.rhs);
        Vec coeffs(m);
        for (const auto& [name, coeff] : diff.coeffs) {
          coeffs[Column(name)] = coeff;
        }
        return Constant(DnfFormula::FromAtom(
            LinearAtom(coeffs, node.rel, -diff.constant)));
      }
      case NodeKind::kRelationAtom:
        return Constant(ext_.database().representation().Substitute(
            TermSubstitution(node.terms), m));
      case NodeKind::kInRegion: {
        PlanPtr out = Make(PlanOp::kInRegion, node);
        out->region_args = node.region_args;
        out->subst = TermSubstitution(node.terms);
        return Finish(std::move(out));
      }
      case NodeKind::kAdjacent:
      case NodeKind::kRegionEq:
      case NodeKind::kSubsetS:
      case NodeKind::kIntersectsS:
      case NodeKind::kDimAtom:
      case NodeKind::kBoundedAtom:
      case NodeKind::kSetAtom:
      case NodeKind::kLfp:
      case NodeKind::kIfp:
      case NodeKind::kPfp:
      case NodeKind::kTc:
      case NodeKind::kDtc:
      case NodeKind::kRbit: {
        PlanPtr out = Make(PlanOp::kLiftBool, node);
        out->children.push_back(LowerBool(node));
        return Finish(std::move(out));
      }
      case NodeKind::kNot:
        return Connective(PlanOp::kNegateSym, node);
      case NodeKind::kAnd:
        return Connective(PlanOp::kAndSym, node);
      case NodeKind::kOr:
        return Connective(PlanOp::kOrSym, node);
      case NodeKind::kImplies:
        return Connective(PlanOp::kImpliesSym, node);
      case NodeKind::kIff:
        return Connective(PlanOp::kIffSym, node);
      case NodeKind::kHull: {
        PlanPtr out = Make(PlanOp::kHull, node);
        out->children.push_back(Lower(*node.children[0]));
        const size_t k = node.bound_vars.size();
        out->hull_arity = k;
        std::vector<size_t> bound_columns;
        for (const std::string& v : node.bound_vars) {
          bound_columns.push_back(Column(v));
        }
        for (size_t col = 0; col < m; ++col) {
          size_t hull_index = k;
          for (size_t i = 0; i < k; ++i) {
            if (bound_columns[i] == col) {
              hull_index = i;
              break;
            }
          }
          out->hull_project.push_back(
              hull_index < k ? AffineExpr::Variable(k, hull_index)
                             : AffineExpr::Constant(k, Rational(0)));
        }
        out->subst = TermSubstitution(node.terms);
        return Finish(std::move(out));
      }
      case NodeKind::kExistsElem:
      case NodeKind::kForallElem: {
        PlanPtr out = Make(node.kind == NodeKind::kExistsElem
                               ? PlanOp::kExistsElim
                               : PlanOp::kForallElim,
                           node);
        out->column = Column(node.bound_vars[0]);
        out->children.push_back(Lower(*node.children[0]));
        return Finish(std::move(out));
      }
      case NodeKind::kExistsRegion:
      case NodeKind::kForallRegion: {
        PlanPtr out = Make(node.kind == NodeKind::kExistsRegion
                               ? PlanOp::kExpandExists
                               : PlanOp::kExpandForall,
                           node);
        out->region_var = node.bound_vars[0];
        out->children.push_back(Lower(*node.children[0]));
        return Finish(std::move(out));
      }
    }
    LCDB_CHECK(false);
    return nullptr;
  }

  /// Boolean lowering: the node's value is a truth value (fixpoint and
  /// closure bodies; after narrowing, any region-pure subtree).
  PlanPtr LowerBool(const FormulaNode& node) {
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse: {
        PlanPtr out = Make(PlanOp::kConstBool, node);
        out->const_bool = node.kind == NodeKind::kTrue;
        return Finish(std::move(out));
      }
      case NodeKind::kNot:
        return BoolConnective(PlanOp::kNotBool, node);
      case NodeKind::kAnd:
        return BoolConnective(PlanOp::kAndBool, node);
      case NodeKind::kOr:
        return BoolConnective(PlanOp::kOrBool, node);
      case NodeKind::kImplies:
        return BoolConnective(PlanOp::kImpliesBool, node);
      case NodeKind::kIff:
        return BoolConnective(PlanOp::kIffBool, node);
      case NodeKind::kExistsRegion:
      case NodeKind::kForallRegion: {
        PlanPtr out = Make(node.kind == NodeKind::kExistsRegion
                               ? PlanOp::kAnyRegion
                               : PlanOp::kAllRegion,
                           node);
        out->region_var = node.bound_vars[0];
        out->children.push_back(LowerBool(*node.children[0]));
        return Finish(std::move(out));
      }
      case NodeKind::kAdjacent:
      case NodeKind::kRegionEq:
      case NodeKind::kSubsetS:
      case NodeKind::kIntersectsS:
      case NodeKind::kDimAtom:
      case NodeKind::kBoundedAtom: {
        PlanPtr out = Make(PlanOp::kRegionAtom, node);
        out->region_args = node.region_args;
        out->dim_value = node.dim_value;
        return Finish(std::move(out));
      }
      case NodeKind::kSetAtom: {
        PlanPtr out = Make(PlanOp::kSetMember, node);
        out->set_var = node.set_var;
        out->region_args = node.region_args;
        return Finish(std::move(out));
      }
      case NodeKind::kLfp:
      case NodeKind::kIfp:
      case NodeKind::kPfp: {
        PlanPtr out = Make(PlanOp::kFixpointMember, node);
        out->set_var = node.set_var;
        out->bound_vars = node.bound_vars;
        out->region_args = node.region_args;
        out->children.push_back(LowerBool(*node.children[0]));
        return Finish(std::move(out));
      }
      case NodeKind::kTc:
      case NodeKind::kDtc: {
        PlanPtr out = Make(PlanOp::kClosureMember, node);
        out->bound_vars = node.bound_vars;
        out->region_args = node.region_args;
        out->region_args2 = node.region_args2;
        out->children.push_back(LowerBool(*node.children[0]));
        return Finish(std::move(out));
      }
      case NodeKind::kRbit: {
        PlanPtr out = Make(PlanOp::kRbitMember, node);
        out->column = Column(node.bound_vars[0]);
        out->region_args = node.region_args;
        out->children.push_back(Lower(*node.children[0]));
        return Finish(std::move(out));
      }
      case NodeKind::kCompare:
      case NodeKind::kRelationAtom:
      case NodeKind::kInRegion:
      case NodeKind::kHull:
      case NodeKind::kExistsElem:
      case NodeKind::kForallElem: {
        // Element-sort subtree in a boolean context: evaluate symbolically
        // and test emptiness, exactly as the legacy EvalBool fallthrough.
        PlanPtr out = Make(PlanOp::kNonEmpty, node);
        out->children.push_back(Lower(node));
        return Finish(std::move(out));
      }
    }
    LCDB_CHECK(false);
    return nullptr;
  }

 private:
  PlanPtr Make(PlanOp op, const FormulaNode& node) {
    auto out = std::make_shared<PlanNode>();
    out->op = op;
    out->source_kind = node.kind;
    return out;
  }

  PlanPtr Finish(PlanPtr node) {
    DeriveAnnotations(node.get(), ext_.num_regions());
    return node;
  }

  PlanPtr Constant(DnfFormula formula) {
    auto out = std::make_shared<PlanNode>();
    out->op = PlanOp::kConstFormula;
    out->const_formula = std::move(formula);
    return Finish(std::move(out));
  }

  PlanPtr Connective(PlanOp op, const FormulaNode& node) {
    PlanPtr out = Make(op, node);
    for (const auto& child : node.children) {
      out->children.push_back(Lower(*child));
    }
    return Finish(std::move(out));
  }

  PlanPtr BoolConnective(PlanOp op, const FormulaNode& node) {
    PlanPtr out = Make(op, node);
    for (const auto& child : node.children) {
      out->children.push_back(LowerBool(*child));
    }
    return Finish(std::move(out));
  }

  size_t Column(const std::string& name) const {
    for (size_t i = 0; i < info_.all_element_vars.size(); ++i) {
      if (info_.all_element_vars[i] == name) return i;
    }
    LCDB_CHECK_MSG(false, "unknown element variable");
    return 0;
  }

  std::vector<AffineExpr> TermSubstitution(
      const std::vector<ElementTerm>& terms) const {
    std::vector<AffineExpr> map;
    map.reserve(terms.size());
    for (const ElementTerm& t : terms) {
      AffineExpr e;
      e.coeffs.assign(num_columns_, Rational(0));
      for (const auto& [name, coeff] : t.coeffs) {
        e.coeffs[Column(name)] = coeff;
      }
      e.constant = t.constant;
      map.push_back(std::move(e));
    }
    return map;
  }

  const TypeInfo& info_;
  const RegionExtension& ext_;
  size_t num_columns_;
};

}  // namespace

CompiledPlan BuildPlan(const FormulaNode& query, const TypeInfo& info,
                       const RegionExtension& ext) {
  Planner planner(info, ext);
  CompiledPlan plan;
  plan.root = planner.Lower(query);
  plan.num_columns = planner.num_columns();
  plan.num_regions = ext.num_regions();
  return plan;
}

}  // namespace lcdb
