#ifndef LCDB_PLAN_BYTECODE_H_
#define LCDB_PLAN_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan_ir.h"

namespace lcdb {

/// Register bytecode for optimized query plans — the flattened execution
/// format the BytecodeVm (plan/vm.h) interprets. The lowering pass
/// (CompileToBytecode) turns the optimized plan DAG into dense fixed-width
/// instructions over three typed register files:
///
///  * `s` registers hold DnfFormula values (symbolic operators),
///  * `b` registers hold booleans (boolean operators),
///  * `i` registers hold loop counters (region-sort iteration).
///
/// Region and set *environments* — std::map<std::string,...> on the tree
/// path — become flat slot arrays resolved at lowering time: the type
/// checker rejects variable shadowing, so every region/set variable name in
/// a plan denotes exactly one binding and gets exactly one slot.
///
/// The lowering mirrors the tree executor's recursion instruction for
/// instruction: every plan node opens with an Enter instruction (governor
/// checkpoint, node counters, EXPLAIN ANALYZE call accounting, memo probe)
/// and closes with a Leave instruction (profile settle, memo store), the
/// same short-circuit jump structure the tree's && / || / break statements
/// produce, and the same operator-accounting brackets ScopedOpTimer emits —
/// so answers, memo hit patterns, governor checkpoint cadence and op.*
/// metrics are byte-identical to the tree walk (see DESIGN.md, "Plan
/// bytecode and the VM").
enum class VmOp : uint8_t {
  // ---- Node entry / exit (checkpoint + counters + memo + profile).
  kEnterSym,   ///< a=dest s, b=skip pc on memo hit, imm=memo desc id (+1)
  kLeaveSym,   ///< a=dest s, imm=memo desc id (+1)
  kEnterBool,  ///< a=dest b, b=skip pc on memo hit, imm=memo desc id (+1)
  kLeaveBool,  ///< a=dest b, imm=memo desc id (+1)
  // ---- Symbolic producers (results in s registers).
  kConstFormula,  ///< s[a] = *node->const_formula
  kInRegion,      ///< s[a] = region(renv[b]) substituted through node->subst
  kLiftBool,      ///< s[a] = b[b] ? True(m) : False(m)
  kNegSym,        ///< s[a] = s[a].Negate()
  kAndSym,        ///< s[a] = s[a].And(s[b])
  kOrSym,         ///< s[a] = s[a].Or(s[b])
  kIffSym,        ///< s[a] = s[a]&s[b] | !s[a]&!s[b]  (tree-exact order)
  kLoadTrueSym,   ///< s[a] = True(m)
  kLoadFalseSym,  ///< s[a] = False(m)
  kHullFinish,    ///< s[a] = hull(project(s[b])) substituted to columns
  kQeExists,      ///< s[a] = ExistsVariable(s[b], node->column)
  kQeForall,      ///< s[a] = ForallVariable(s[b], node->column)
  // ---- Boolean producers (results in b registers).
  kLoadBool,        ///< b[a] = imm
  kNotBool,         ///< b[a] = !b[a]
  kEqBool,          ///< b[a] = (b[a] == b[b])
  kRegionAtom,      ///< b[a] = atom(node->source_kind, renv[b] [, renv[c]])
  kSetMember,       ///< b[a] = tuple(list imm) in senv[b]'s current stage
  kFixpointMember,  ///< b[a] = tuple in FixpointSet(site imm)
  kClosureMember,   ///< b[a] = closure(site imm)[from][to]
  kRbitFinish,      ///< b[a] = rBIT verdict of body s[b]; site imm, icache c
  kNonEmpty,        ///< b[a] = !s[b].IsEmpty(); inline cache slot c
  // ---- Control flow (jump targets are within-proc pcs).
  kJmp,            ///< pc = b
  kJmpIfSymFalse,  ///< if s[a].IsSyntacticallyFalse() pc = b
  kJmpIfSymTrue,   ///< if s[a].IsSyntacticallyTrue() pc = b
  kJmpIfFalseBool, ///< if !b[a] pc = b
  kJmpIfTrueBool,  ///< if b[a] pc = b
  kLoadImm,        ///< i[a] = imm
  kLoopHead,       ///< if i[a] >= |Reg| pc = b; imm = governor stride
  kLoopNext,       ///< ++i[a]; pc = b
  kSetRegion,      ///< renv[a] = i[b]
  // ---- Operator accounting (ScopedOpTimer / counter brackets).
  kBeginOp,  ///< imm = OpFlags; timed ops push a timer + trace span
  kEndOp,    ///< pops the matching timer, records into op_timings
  // ---- Procedures (shared CSE nodes; fixpoint / closure bodies).
  kCallSym,   ///< s[a] = result reg 0 of proc imm
  kCallBool,  ///< b[a] = result reg 0 of proc imm
  kRet,       ///< return from proc (result is frame-local reg 0)
  kHalt,      ///< end of the main proc
};

/// kBeginOp accounting flags (bitwise-orable).
enum OpFlags : uint32_t {
  kOpTimed = 1,        ///< wall-clock into op_timings + "op" trace span
  kOpCountQe = 2,      ///< ++stats.qe_eliminations
  kOpCountExpand = 4,  ///< ++stats.region_expansions
};

/// One fixed-width instruction. `node` points into the compiled plan (kept
/// alive by BytecodeProgram::plan) for payload access, cache identity and
/// profile attribution.
struct VmInstr {
  VmOp op = VmOp::kHalt;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t imm = 0;
  const PlanNode* node = nullptr;
};

/// Memo-key layout of one cacheable node: region slots in the node's
/// name-sorted free_region order, then set slots in free_sets order — the
/// exact key the tree executor's CacheKey builds, so hit patterns match.
struct VmMemoDesc {
  std::vector<uint32_t> region_slots;
  std::vector<uint32_t> set_slots;
};

/// Region-slot operands of a kSetMember tuple (arbitrary arity).
using VmSlotList = std::vector<uint32_t>;

/// Payload of one kFixpointMember site: the boolean body proc plus the
/// slots the native Kleene loop writes (bound tuple, set binding) and reads
/// (applied arguments).
struct VmFixpointSite {
  uint32_t body_proc = 0;
  uint32_t set_slot = 0;
  std::vector<uint32_t> bound_slots;
  std::vector<uint32_t> arg_slots;
};

/// Payload of one kClosureMember site (bound_slots holds both m-tuples).
struct VmClosureSite {
  uint32_t body_proc = 0;
  std::vector<uint32_t> bound_slots;
  std::vector<uint32_t> arg_slots;
  std::vector<uint32_t> arg2_slots;
};

/// Payload of one kRbitFinish site: the region slots of (R_n, R_d).
struct VmRbitSite {
  uint32_t rn_slot = 0;
  uint32_t rd_slot = 0;
};

/// One procedure: the main program (proc 0), one proc per CSE-shared plan
/// node, and one boolean proc per fixpoint / closure body (invoked natively
/// from inside the member instructions). Jumps are within-proc indices;
/// the result convention is frame-local register 0.
struct VmProc {
  std::vector<VmInstr> code;
  uint32_t num_sregs = 0;
  uint32_t num_bregs = 0;
  uint32_t num_iregs = 0;
  bool symbolic = true;          ///< result in s0 (else b0)
  const PlanNode* origin = nullptr;  ///< nullptr for the main proc
};

/// A lowered plan: procedures plus the side tables instructions index into.
/// Owns (a copy of the shared_ptr spine of) the source plan so instruction
/// node pointers stay valid for the program's lifetime.
struct BytecodeProgram {
  std::vector<VmProc> procs;  ///< procs[0] is the entry point
  std::vector<std::string> region_slot_names;
  std::vector<std::string> set_slot_names;
  std::vector<VmMemoDesc> memo_descs;
  std::vector<VmSlotList> slot_lists;
  std::vector<VmFixpointSite> fixpoint_sites;
  std::vector<VmClosureSite> closure_sites;
  std::vector<VmRbitSite> rbit_sites;
  size_t num_icache_slots = 0;
  size_t num_columns = 0;
  size_t num_regions = 0;
  CompiledPlan plan;  ///< keepalive for the node pointers above
  /// Set by the caller after analysis/bytecode_verify.h accepts the
  /// program; BytecodeVm refuses to run unverified programs unless
  /// Options::verify is off.
  bool verified = false;

  size_t TotalInstructions() const {
    size_t n = 0;
    for (const VmProc& p : procs) n += p.code.size();
    return n;
  }
};

/// Lowers an *optimized* plan to bytecode. The pass requires the optimizer
/// pipeline to have run (callers enforce Options::optimize; the Evaluator
/// rejects use_bytecode without optimize as kInvalidArgument) because the
/// lowering trusts the pass-maintained annotations — cache marks, name-
/// sorted free-variable lists — that raw plans carry unset.
BytecodeProgram CompileToBytecode(const CompiledPlan& plan);

/// Instruction mnemonic (disassembly, tests).
const char* VmOpName(VmOp op);

/// Deterministic human-readable listing of the whole program: one block per
/// proc with register counts, one line per instruction with resolved slot
/// names and 4-digit jump targets, plus the side tables. Byte-stable across
/// runs (node references use lowering-order ids, never pointers) — the
/// format `lcdbq --explain-bytecode` prints and the goldens pin.
std::string DisassembleBytecode(const BytecodeProgram& program);

}  // namespace lcdb

#endif  // LCDB_PLAN_BYTECODE_H_
