#ifndef LCDB_PLAN_VM_H_
#define LCDB_PLAN_VM_H_

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "db/region_extension.h"
#include "engine/kernel_stats.h"
#include "plan/bytecode.h"

namespace lcdb {

class ConstraintKernel;
class QueryTracer;

/// Register-machine interpreter for lowered plans (plan/bytecode.h) — the
/// `use_bytecode` backend behind the ExecutePlan façade. One flat dispatch
/// loop replaces the tree executor's recursive virtual walk; the semantic
/// contract is byte-identical answer formulas, memo hit patterns, governor
/// checkpoint cadence and op.*/trace telemetry versus PlanExecutor (the
/// tree walk stays one release as the equivalence oracle; see
/// plan_equivalence_test.cc).
///
/// The one *permitted* divergence is kernel query counts: kernel call sites
/// (kNonEmpty emptiness tests, the rBIT implication) carry per-site inline
/// caches — a verdict slot keyed by the full canonical encoding of the
/// queried system and owned by the kernel it was filled against. A hit
/// skips the kernel entirely (no lock, no LRU touch); a kernel swap
/// (ScopedKernel) invalidates on first touch; formulas wider than
/// kIcacheMaxDisjuncts bypass the cache so fingerprinting can never cost
/// more than the short-circuiting oracle walk it replaces. Hit/miss/
/// invalidation/bypass counts land in Stats::vm and reset per Evaluate.
///
/// Like the tree executor, the VM is single-query: construct, Run() once,
/// read the updated stats. The program must outlive the VM.
class BytecodeVm {
 public:
  BytecodeVm(const BytecodeProgram& program, const RegionExtension& ext,
             const Evaluator::Options& options, Evaluator::Stats* stats);

  /// Executes proc 0; fires the "plan.execute" failpoint first, exactly
  /// like PlanExecutor::Run. On a QueryInterrupt unwind, open operator
  /// timers are closed (recording their partial wall-clock, matching the
  /// tree walk's ScopedOpTimer destructors) and pending profile frames are
  /// discarded (matching Profiled's skip-on-unwind).
  DnfFormula Run();

  /// EXPLAIN ANALYZE sink, same contract as PlanExecutor::EnableProfiling.
  void EnableProfiling(PlanProfile* profile) { profile_ = profile; }

  /// Cap on disjuncts an inline-cache key will fingerprint; wider formulas
  /// bypass the cache (counted in Stats::vm.icache_bypasses).
  static constexpr size_t kIcacheMaxDisjuncts = 8;

 private:
  using Tuple = std::vector<size_t>;
  using TupleSet = std::set<Tuple>;
  struct SetBinding {
    const TupleSet* tuples = nullptr;
    size_t version = 0;
  };
  /// One open kBeginOp(kOpTimed) bracket: closed by kEndOp or by the
  /// unwind handler in Run().
  struct OpFrame {
    PlanOp op;
    std::chrono::steady_clock::time_point start;
    uint64_t span_id = 0;
    QueryTracer* tracer = nullptr;
  };
  /// One in-flight profiled node evaluation (Enter .. Leave), mirroring
  /// PlanExecutor::Profiled's before-snapshots.
  struct ProfileFrame {
    const PlanNode* node = nullptr;
    std::chrono::steady_clock::time_point start;
    KernelStats kernel_before;
    uint64_t checkpoints_before = 0;
    bool governed = false;
  };
  /// Per-site kernel verdict slot. `kernel` identifies the owning kernel
  /// (CurrentKernel() at fill time) and `epoch` pins its
  /// ConstraintKernel::CacheEpoch() at fill time — a ScopedKernel swap,
  /// ClearCache(), or lemma-database invalidation moves one of the two and
  /// drops the slot, so a cleared kernel never serves a stale hit. `key`
  /// is the *full* canonical encoding, compared exactly — a colliding hash
  /// can therefore never break tree/VM byte-identity.
  struct IcacheSlot {
    const ConstraintKernel* kernel = nullptr;
    uint64_t epoch = 0;
    std::string key;
    bool verdict = false;
  };

  /// Runs `proc_id` in a fresh register frame; the result convention is
  /// frame-local register 0.
  DnfFormula CallSymProc(uint32_t proc_id);
  bool CallBoolProc(uint32_t proc_id);
  /// The dispatch loop over one proc's code, registers based at the given
  /// frame offsets.
  void Dispatch(const VmProc& proc, size_t sb, size_t bb, size_t ib);

  /// Builds the memo key of `desc` from the current slot environments —
  /// the same value sequence PlanExecutor::CacheKey pushes.
  void BuildKey(const VmMemoDesc& desc, Tuple* key) const;

  /// Concatenated canonical encodings of the formula's disjuncts (the
  /// inline-cache fingerprint). Only called for formulas under the
  /// disjunct cap.
  std::string Fingerprint(const DnfFormula& f) const;
  bool IcacheLookup(uint32_t slot, const std::string& key, bool* verdict);
  void IcacheStore(uint32_t slot, std::string key, bool verdict);

  /// Deposits completed fixpoint/closure cache entries into the ambient
  /// ResumeCollector (core/resume.h) during Run's unwind — mirrors
  /// PlanExecutor::HarvestResumeState.
  void HarvestResumeState();

  /// Native ports of the tree executor's member-operator engines; the
  /// boolean body runs as a proc call instead of a recursive EvalBool.
  const TupleSet& FixpointSet(const VmFixpointSite& site,
                              const PlanNode& node);
  const std::vector<std::vector<bool>>& ClosureMatrix(
      const VmClosureSite& site, const PlanNode& node);
  bool EvalRbitFinish(const VmInstr& in, const DnfFormula& body);
  size_t TupleIndex(const Tuple& tuple) const;

  void PushOpFrame(const PlanNode& node);
  void CloseOpFrame();

  const BytecodeProgram& program_;
  const RegionExtension& ext_;
  const Evaluator::Options& options_;
  Evaluator::Stats* stats_;
  PlanProfile* profile_ = nullptr;
  size_t num_columns_;

  // Register stacks; Call instructions extend them by the callee's frame.
  std::vector<DnfFormula> sregs_;
  std::vector<uint8_t> bregs_;
  std::vector<size_t> iregs_;

  // Flat slot environments (lowering resolves names to slots).
  std::vector<size_t> renv_;
  std::vector<SetBinding> senv_;

  std::vector<IcacheSlot> icache_;
  std::vector<OpFrame> op_stack_;
  std::vector<ProfileFrame> profile_stack_;

  // Memo and member-operator caches, keyed by node identity like the tree
  // executor's.
  std::map<const PlanNode*, std::map<Tuple, DnfFormula>> memo_;
  std::map<const PlanNode*, std::map<Tuple, bool>> bool_memo_;
  std::map<const PlanNode*, TupleSet> fixpoint_cache_;
  std::map<const PlanNode*, std::vector<std::vector<bool>>> closure_cache_;
  size_t set_version_counter_ = 0;
};

/// Thin façade selecting the plan backend: the bytecode VM when
/// `options.use_bytecode` (lowering under a "plan.lower" trace span, program
/// shape published into stats->vm), the tree-walk PlanExecutor otherwise.
/// Both backends fire the "plan.execute" failpoint at their Run entry.
DnfFormula ExecutePlan(const CompiledPlan& plan, const RegionExtension& ext,
                       const Evaluator::Options& options,
                       Evaluator::Stats* stats, PlanProfile* profile);

}  // namespace lcdb

#endif  // LCDB_PLAN_VM_H_
