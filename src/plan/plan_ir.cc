#include "plan/plan_ir.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/status.h"

namespace lcdb {

std::string PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kConstFormula: return "const.formula";
    case PlanOp::kInRegion: return "in_region";
    case PlanOp::kLiftBool: return "lift_bool";
    case PlanOp::kNegateSym: return "not.sym";
    case PlanOp::kAndSym: return "and.sym";
    case PlanOp::kOrSym: return "or.sym";
    case PlanOp::kImpliesSym: return "implies.sym";
    case PlanOp::kIffSym: return "iff.sym";
    case PlanOp::kHull: return "hull";
    case PlanOp::kExistsElim: return "qe.exists";
    case PlanOp::kForallElim: return "qe.forall";
    case PlanOp::kExpandExists: return "expand.exists";
    case PlanOp::kExpandForall: return "expand.forall";
    case PlanOp::kConstBool: return "const.bool";
    case PlanOp::kNotBool: return "not.bool";
    case PlanOp::kAndBool: return "and.bool";
    case PlanOp::kOrBool: return "or.bool";
    case PlanOp::kImpliesBool: return "implies.bool";
    case PlanOp::kIffBool: return "iff.bool";
    case PlanOp::kAnyRegion: return "any_region";
    case PlanOp::kAllRegion: return "all_region";
    case PlanOp::kRegionAtom: return "region_atom";
    case PlanOp::kSetMember: return "set_member";
    case PlanOp::kFixpointMember: return "fixpoint";
    case PlanOp::kClosureMember: return "closure";
    case PlanOp::kRbitMember: return "rbit";
    case PlanOp::kNonEmpty: return "nonempty";
  }
  return "?";
}

namespace {

/// n^k with saturation at SIZE_MAX (fan-out estimates only).
size_t SaturatingPow(size_t n, size_t k) {
  size_t out = 1;
  for (size_t i = 0; i < k; ++i) {
    if (n != 0 && out > SIZE_MAX / n) return SIZE_MAX;
    out *= n;
  }
  return out;
}

const char* RegionAtomName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kAdjacent: return "adj";
    case NodeKind::kRegionEq: return "eq";
    case NodeKind::kSubsetS: return "subset";
    case NodeKind::kIntersectsS: return "meets";
    case NodeKind::kDimAtom: return "dim";
    case NodeKind::kBoundedAtom: return "bounded";
    default: return "?";
  }
}

const char* FixpointName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kLfp: return "lfp";
    case NodeKind::kIfp: return "ifp";
    case NodeKind::kPfp: return "pfp";
    case NodeKind::kTc: return "tc";
    case NodeKind::kDtc: return "dtc";
    default: return "?";
  }
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

void DeriveAnnotations(PlanNode* node, size_t num_regions) {
  std::set<std::string> fr, fs;
  bool pure = true;
  bool worth = false;
  for (const PlanPtr& child : node->children) {
    fr.insert(child->free_region.begin(), child->free_region.end());
    fs.insert(child->free_sets.begin(), child->free_sets.end());
    pure &= child->region_pure;
    worth |= child->worth_caching;
  }
  node->est_fanout = 1;
  switch (node->op) {
    case PlanOp::kConstFormula:
      pure = node->const_formula->IsSyntacticallyTrue() ||
             node->const_formula->IsSyntacticallyFalse();
      // A non-trivial constant (compare / relation atom) is the lowering of
      // an element-sort atom — worth a cache slot, like the legacy walk's
      // WorthCaching marks for kCompare / kRelationAtom.
      worth = !pure;
      break;
    case PlanOp::kInRegion:
    case PlanOp::kHull:
      pure = false;
      worth = true;
      fr.insert(node->region_args.begin(), node->region_args.end());
      break;
    case PlanOp::kExistsElim:
    case PlanOp::kForallElim:
      pure = false;
      worth = true;
      break;
    case PlanOp::kExpandExists:
    case PlanOp::kExpandForall:
      worth = true;
      fr.erase(node->region_var);
      node->est_fanout = num_regions;
      break;
    case PlanOp::kAnyRegion:
    case PlanOp::kAllRegion:
      worth = true;
      fr.erase(node->region_var);
      node->est_fanout = num_regions;
      break;
    case PlanOp::kRegionAtom:
      fr.insert(node->region_args.begin(), node->region_args.end());
      break;
    case PlanOp::kSetMember:
      fr.insert(node->region_args.begin(), node->region_args.end());
      fs.insert(node->set_var);
      break;
    case PlanOp::kFixpointMember:
      worth = true;
      for (const std::string& b : node->bound_vars) fr.erase(b);
      fs.erase(node->set_var);
      fr.insert(node->region_args.begin(), node->region_args.end());
      node->est_fanout = SaturatingPow(num_regions, node->bound_vars.size());
      break;
    case PlanOp::kClosureMember: {
      worth = true;
      for (const std::string& b : node->bound_vars) fr.erase(b);
      fr.insert(node->region_args.begin(), node->region_args.end());
      fr.insert(node->region_args2.begin(), node->region_args2.end());
      const size_t space =
          SaturatingPow(num_regions, node->bound_vars.size() / 2);
      node->est_fanout = SaturatingPow(space, 2);
      break;
    }
    case PlanOp::kRbitMember:
      // The body's free region variables are the rBIT parameters P̄ and
      // stay free (Definition 5.1).
      worth = true;
      fr.insert(node->region_args.begin(), node->region_args.end());
      break;
    case PlanOp::kNonEmpty:
      worth = true;
      break;
    case PlanOp::kLiftBool:
      pure = true;
      break;
    default:
      break;
  }
  node->free_region.assign(fr.begin(), fr.end());
  node->free_sets.assign(fs.begin(), fs.end());
  node->region_pure = node->IsSymbolic() ? pure : true;
  node->worth_caching = worth;
}

namespace {

void CountNodesImpl(const PlanNode& node, std::set<const PlanNode*>* seen) {
  if (!seen->insert(&node).second) return;
  for (const PlanPtr& child : node.children) CountNodesImpl(*child, seen);
}

class PlanPrinter {
 public:
  PlanPrinter(size_t num_regions, const PlanProfile* profile,
              const PlanCostMap* costs)
      : num_regions_(num_regions), profile_(profile), costs_(costs) {}

  void Print(const PlanNode& node, size_t depth) {
    out_.append(2 * depth, ' ');
    auto it = ids_.find(&node);
    if (it != ids_.end()) {
      out_ += "#" + std::to_string(it->second) + " (shared, see above)\n";
      return;
    }
    const int id = next_id_++;
    ids_.emplace(&node, id);
    out_ += "#" + std::to_string(id) + " " + PlanOpName(node.op);
    const std::string detail = Detail(node);
    if (!detail.empty()) out_ += " " + detail;
    out_ += Annotations(node);
    if (costs_ != nullptr) out_ += Estimated(node);
    if (profile_ != nullptr) out_ += Measured(node);
    out_ += "\n";
    for (const PlanPtr& child : node.children) Print(*child, depth + 1);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string Detail(const PlanNode& node) {
    switch (node.op) {
      case PlanOp::kConstFormula: {
        std::string f = node.const_formula->ToString();
        if (f.size() > 48) f = f.substr(0, 45) + "...";
        return "{" + f + "}";
      }
      case PlanOp::kConstBool:
        return node.const_bool ? "{true}" : "{false}";
      case PlanOp::kInRegion:
        return node.region_args[0];
      case PlanOp::kExpandExists:
      case PlanOp::kExpandForall:
      case PlanOp::kAnyRegion:
      case PlanOp::kAllRegion:
        return node.region_var;
      case PlanOp::kExistsElim:
      case PlanOp::kForallElim:
        return "col" + std::to_string(node.column);
      case PlanOp::kRegionAtom:
        return std::string(RegionAtomName(node.source_kind)) + "(" +
               JoinNames(node.region_args) +
               (node.source_kind == NodeKind::kDimAtom
                    ? ")=" + std::to_string(node.dim_value)
                    : ")");
      case PlanOp::kSetMember:
        return node.set_var + "(" + JoinNames(node.region_args) + ")";
      case PlanOp::kFixpointMember:
        return std::string(FixpointName(node.source_kind)) + " " +
               node.set_var + " " + JoinNames(node.bound_vars) + " (" +
               JoinNames(node.region_args) + ")";
      case PlanOp::kClosureMember:
        return std::string(FixpointName(node.source_kind)) + " " +
               JoinNames(node.bound_vars) + " (" +
               JoinNames(node.region_args) + " ; " +
               JoinNames(node.region_args2) + ")";
      case PlanOp::kRbitMember:
        return "(" + JoinNames(node.region_args) + ")";
      default:
        return "";
    }
  }

  std::string Annotations(const PlanNode& node) {
    std::string out = "  [";
    out += "free={" + JoinNames(node.free_region) + "}";
    if (!node.free_sets.empty()) {
      out += " set-dep={" + JoinNames(node.free_sets) + "}";
    }
    out += node.cache == CachePolicy::kByRegionKey ? " cache=region-key"
                                                   : " cache=none";
    if (node.est_fanout > 1) {
      out += " fanout=" + std::to_string(node.est_fanout);
    }
    out += "]";
    return out;
  }

  /// Tier-2 cost column: the analyzer's predicted execution of the node.
  /// Quantities are estimates (deterministic, plan-shape-only), printed in
  /// compact %.3g form so huge tuple spaces stay readable.
  std::string Estimated(const PlanNode& node) {
    auto it = costs_->find(&node);
    if (it == costs_->end()) return "";
    const PlanCostEstimate& c = it->second;
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3g", v);
      return std::string(buf);
    };
    std::string out = "  | est: calls=" + fmt(c.est_calls);
    out += " rows=" + fmt(c.est_rows);
    out += " bigint-ops=" + fmt(c.est_bigint_ops);
    if (c.dead_cache) out += " cache=dead";
    return out;
  }

  /// EXPLAIN ANALYZE column: measured execution of the node. Times are
  /// inclusive (parents contain children), so the root line is the query's
  /// wall-clock and each level shows where inside it the time went.
  std::string Measured(const PlanNode& node) {
    auto it = profile_->find(&node);
    if (it == profile_->end()) return "  | (not executed)";
    const PlanNodeProfile& p = it->second;
    std::string out = "  | calls=" + std::to_string(p.calls);
    if (p.memo_hits > 0) out += " memo=" + std::to_string(p.memo_hits);
    out += " time=" + FormatNs(p.total_ns);
    out += " kernel=" + std::to_string(p.kernel_queries);
    if (p.kernel_cache_hits > 0) {
      out += "(" + std::to_string(p.kernel_cache_hits) + " cached)";
    }
    if (p.governor_checkpoints > 0) {
      out += " gov=" + std::to_string(p.governor_checkpoints);
    }
    out += " rows=" + std::to_string(p.rows);
    return out;
  }

  size_t num_regions_;
  const PlanProfile* profile_;
  const PlanCostMap* costs_;
  std::string out_;
  std::map<const PlanNode*, int> ids_;
  int next_id_ = 0;
};

}  // namespace

size_t CountPlanNodes(const PlanNode& root) {
  std::set<const PlanNode*> seen;
  CountNodesImpl(root, &seen);
  return seen.size();
}

std::string PrintPlan(const CompiledPlan& plan, const PlanProfile* profile,
                      const PlanCostMap* costs) {
  LCDB_CHECK(plan.root != nullptr);
  PlanPrinter printer(plan.num_regions, profile, costs);
  printer.Print(*plan.root, 0);
  return printer.Take();
}

}  // namespace lcdb
