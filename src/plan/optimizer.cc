#include "plan/optimizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/const_analysis.h"
#include "analysis/plan_verify.h"
#include "engine/trace.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

namespace {

// Constant classification lives in analysis/const_analysis.h, shared with
// the static analyzer so dead-branch pruning and vacuity diagnostics answer
// from one kernel-backed analysis.

class Optimizer {
 public:
  Optimizer(size_t num_regions, size_t num_columns, PlanPassStats* stats)
      : n_(num_regions), m_(num_columns), stats_(stats) {}

  PlanPtr Run(PlanPtr root) {
    // Each pass gets its own trace span so EXPLAIN-style traces show where
    // compile time goes (folding dominates: it asks the kernel questions).
    root = Pass("pass.fold", [&](PlanPtr r) { return Fold(std::move(r)); },
                std::move(root));
    root = Pass("pass.narrow", [&](PlanPtr r) { return Narrow(std::move(r)); },
                std::move(root));
    // Narrowing rewrites symbolic connectives over constant formulas into
    // boolean connectives over constant bools; fold again to collapse them
    // (every fold is byte-safe, so re-running is free).
    root = Pass("pass.fold", [&](PlanPtr r) { return Fold(std::move(r)); },
                std::move(root));
    root = Pass("pass.reorder_quantifiers",
                [&](PlanPtr r) { return ReorderQuantifiers(std::move(r)); },
                std::move(root));
    root = Pass("pass.hoist", [&](PlanPtr r) { return Hoist(std::move(r)); },
                std::move(root));
    root = Pass("pass.order_conjuncts",
                [&](PlanPtr r) { return OrderConjuncts(std::move(r)); },
                std::move(root));
    root = Pass("pass.cse", [&](PlanPtr r) { return Cse(std::move(r)); },
                std::move(root));
    {
      TraceSpan span("pass.mark_cacheable");
      MarkCacheable(root.get());
    }
    return root;
  }

 private:
  template <typename Fn>
  PlanPtr Pass(const char* name, Fn&& fn, PlanPtr root) {
    TraceSpan span(name);
    root = fn(std::move(root));
#ifndef NDEBUG
    // Debug builds re-verify the plan between every pass so an invariant
    // break is pinned to the pass that introduced it, not discovered at
    // the post-pipeline gate with seven suspects.
    if (root != nullptr) {
      if (Status verified = VerifyPlan(*root, m_, n_, name); !verified.ok()) {
        throw QueryInterrupt(verified);
      }
    }
#endif
    return root;
  }

  // ---- Node constructors. ----

  PlanPtr Derived(PlanPtr node) {
    DeriveAnnotations(node.get(), n_);
    return node;
  }

  PlanPtr ConstFormula(DnfFormula f) {
    auto out = std::make_shared<PlanNode>();
    out->op = PlanOp::kConstFormula;
    out->const_formula = std::move(f);
    return Derived(std::move(out));
  }

  PlanPtr ConstBool(bool value) {
    auto out = std::make_shared<PlanNode>();
    out->op = PlanOp::kConstBool;
    out->const_bool = value;
    return Derived(std::move(out));
  }

  PlanPtr MakeUnary(PlanOp op, PlanPtr child) {
    auto out = std::make_shared<PlanNode>();
    out->op = op;
    out->children.push_back(std::move(child));
    return Derived(std::move(out));
  }

  PlanPtr MakeBinary(PlanOp op, PlanPtr a, PlanPtr b) {
    auto out = std::make_shared<PlanNode>();
    out->op = op;
    out->children.push_back(std::move(a));
    out->children.push_back(std::move(b));
    return Derived(std::move(out));
  }

  PlanPtr MakeQuantifier(PlanOp op, std::string var, PlanPtr body) {
    auto out = std::make_shared<PlanNode>();
    out->op = op;
    out->region_var = std::move(var);
    out->children.push_back(std::move(body));
    return Derived(std::move(out));
  }

  /// Right-nested and-chain (the executor short-circuits left to right).
  PlanPtr BuildAnd(std::vector<PlanPtr> items) {
    LCDB_CHECK(!items.empty());
    PlanPtr out = items.back();
    for (size_t i = items.size() - 1; i-- > 0;) {
      out = MakeBinary(PlanOp::kAndBool, items[i], std::move(out));
    }
    return out;
  }

  // ---- Pass 1: constant folding / dead-branch pruning. ----
  //
  // Folds use the exact algebra the executor (and the legacy walk) would
  // apply, so every fold is representation-identical, not merely
  // equivalent. DnfFormula::And/Or/Negate consult the kernel's feasibility
  // oracle internally — an infeasible branch folds to the canonical
  // False(m) here, at compile time, and its siblings are pruned.

  PlanPtr Fold(PlanPtr node) {
    for (PlanPtr& child : node->children) child = Fold(std::move(child));
    DeriveAnnotations(node.get(), n_);
    const auto& c = node->children;
    switch (node->op) {
      case PlanOp::kNegateSym:
        if (IsConstFormula(*c[0])) {
          return Folded(ConstFormula(c[0]->const_formula->Negate()));
        }
        break;
      case PlanOp::kAndSym:
        if (IsConstFalseFormula(*c[0])) return Pruned(c[0]);
        if (IsConstFormula(*c[0]) && IsConstFormula(*c[1])) {
          return Folded(ConstFormula(
              c[0]->const_formula->And(*c[1]->const_formula)));
        }
        // A syntactically false right operand annihilates: the pairwise
        // product has no disjuncts whatever the left side evaluates to.
        if (IsConstFalseFormula(*c[1])) {
          return Pruned(ConstFormula(DnfFormula::False(m_)));
        }
        break;
      case PlanOp::kOrSym:
        if (IsConstTrueFormula(*c[0])) return Pruned(c[0]);
        if (IsConstFormula(*c[0]) && IsConstFormula(*c[1])) {
          return Folded(ConstFormula(
              c[0]->const_formula->Or(*c[1]->const_formula)));
        }
        break;
      case PlanOp::kImpliesSym:
        if (IsConstFalseFormula(*c[0])) {
          return Pruned(ConstFormula(DnfFormula::True(m_)));
        }
        if (IsConstFormula(*c[0]) && IsConstFormula(*c[1])) {
          return Folded(ConstFormula(
              c[0]->const_formula->Negate().Or(*c[1]->const_formula)));
        }
        break;
      case PlanOp::kIffSym:
        if (IsConstFormula(*c[0]) && IsConstFormula(*c[1])) {
          const DnfFormula& a = *c[0]->const_formula;
          const DnfFormula& b = *c[1]->const_formula;
          return Folded(
              ConstFormula(a.And(b).Or(a.Negate().And(b.Negate()))));
        }
        break;
      case PlanOp::kLiftBool:
        if (IsConstBool(*c[0])) {
          return Folded(ConstFormula(c[0]->const_bool
                                         ? DnfFormula::True(m_)
                                         : DnfFormula::False(m_)));
        }
        break;
      case PlanOp::kExpandExists:
        if (IsConstTrueFormula(*c[0])) {
          return Folded(ConstFormula(n_ > 0 ? DnfFormula::True(m_)
                                            : DnfFormula::False(m_)));
        }
        if (IsConstFalseFormula(*c[0])) {
          return Folded(ConstFormula(DnfFormula::False(m_)));
        }
        break;
      case PlanOp::kExpandForall:
        if (IsConstFalseFormula(*c[0])) {
          return Folded(ConstFormula(n_ > 0 ? DnfFormula::False(m_)
                                            : DnfFormula::True(m_)));
        }
        if (IsConstTrueFormula(*c[0])) {
          return Folded(ConstFormula(DnfFormula::True(m_)));
        }
        break;
      case PlanOp::kNotBool:
        if (IsConstBool(*c[0])) return Folded(ConstBool(!c[0]->const_bool));
        break;
      case PlanOp::kAndBool:
        if ((IsConstBool(*c[0]) && !c[0]->const_bool) ||
            (IsConstBool(*c[1]) && !c[1]->const_bool)) {
          return Pruned(ConstBool(false));
        }
        if (IsConstBool(*c[0])) return Folded(c[1]);
        if (IsConstBool(*c[1])) return Folded(c[0]);
        break;
      case PlanOp::kOrBool:
        if ((IsConstBool(*c[0]) && c[0]->const_bool) ||
            (IsConstBool(*c[1]) && c[1]->const_bool)) {
          return Pruned(ConstBool(true));
        }
        if (IsConstBool(*c[0])) return Folded(c[1]);
        if (IsConstBool(*c[1])) return Folded(c[0]);
        break;
      case PlanOp::kImpliesBool:
        if (IsConstBool(*c[0])) {
          return c[0]->const_bool ? Folded(c[1]) : Pruned(ConstBool(true));
        }
        if (IsConstBool(*c[1])) {
          return c[1]->const_bool
                     ? Pruned(ConstBool(true))
                     : Folded(MakeUnary(PlanOp::kNotBool, c[0]));
        }
        break;
      case PlanOp::kIffBool:
        if (IsConstBool(*c[0]) && IsConstBool(*c[1])) {
          return Folded(ConstBool(c[0]->const_bool == c[1]->const_bool));
        }
        if (IsConstBool(*c[0])) {
          return Folded(c[0]->const_bool
                            ? c[1]
                            : MakeUnary(PlanOp::kNotBool, c[1]));
        }
        if (IsConstBool(*c[1])) {
          return Folded(c[1]->const_bool
                            ? c[0]
                            : MakeUnary(PlanOp::kNotBool, c[0]));
        }
        break;
      case PlanOp::kAnyRegion:
        if (IsConstBool(*c[0])) {
          return Folded(ConstBool(c[0]->const_bool && n_ > 0));
        }
        break;
      case PlanOp::kAllRegion:
        if (IsConstBool(*c[0])) {
          return Folded(ConstBool(c[0]->const_bool || n_ == 0));
        }
        break;
      case PlanOp::kNonEmpty:
        // Environment-independent emptiness, decided once by the shared
        // constant analysis (a cache hit when the analyzer already asked).
        if (IsConstFormula(*c[0])) {
          return Folded(
              ConstBool(!ConstFormulaProvablyEmpty(*c[0]->const_formula)));
        }
        break;
      default:
        break;
    }
    return node;
  }

  PlanPtr Folded(PlanPtr replacement) {
    ++stats_->folded_constants;
    return replacement;
  }

  PlanPtr Pruned(PlanPtr replacement) {
    ++stats_->pruned_branches;
    return replacement;
  }

  // ---- Pass 2: narrow region-pure symbolic subtrees to boolean mode. ----
  //
  // A region-pure symbolic subtree evaluates to exactly True(m)/False(m)
  // (region atoms produce the canonical constants and DnfFormula's algebra
  // is closed on them), so replacing it by a boolean lowering under one
  // lift_bool bridge leaves the answer formula unchanged while turning
  // symbolic Or/And accumulation into short-circuit loops.

  PlanPtr Narrow(PlanPtr node) {
    if (node->IsSymbolic() && node->region_pure &&
        node->op != PlanOp::kConstFormula && node->op != PlanOp::kLiftBool) {
      ++stats_->narrowed_subtrees;
      return Derived(MakeUnary(PlanOp::kLiftBool, ToBool(node)));
    }
    for (PlanPtr& child : node->children) child = Narrow(std::move(child));
    DeriveAnnotations(node.get(), n_);
    return node;
  }

  PlanPtr ToBool(const PlanPtr& node) {
    switch (node->op) {
      case PlanOp::kConstFormula:
        return ConstBool(node->const_formula->IsSyntacticallyTrue());
      case PlanOp::kLiftBool:
        return node->children[0];
      case PlanOp::kNegateSym:
        return MakeUnary(PlanOp::kNotBool, ToBool(node->children[0]));
      case PlanOp::kAndSym:
        return MakeBinary(PlanOp::kAndBool, ToBool(node->children[0]),
                          ToBool(node->children[1]));
      case PlanOp::kOrSym:
        return MakeBinary(PlanOp::kOrBool, ToBool(node->children[0]),
                          ToBool(node->children[1]));
      case PlanOp::kImpliesSym:
        return MakeBinary(PlanOp::kImpliesBool, ToBool(node->children[0]),
                          ToBool(node->children[1]));
      case PlanOp::kIffSym:
        return MakeBinary(PlanOp::kIffBool, ToBool(node->children[0]),
                          ToBool(node->children[1]));
      case PlanOp::kExpandExists:
      case PlanOp::kExpandForall:
        return MakeQuantifier(node->op == PlanOp::kExpandExists
                                  ? PlanOp::kAnyRegion
                                  : PlanOp::kAllRegion,
                              node->region_var, ToBool(node->children[0]));
      default:
        LCDB_CHECK_MSG(false, "non-pure operator in region-pure subtree");
        return nullptr;
    }
  }

  // ---- Pass 3: reorder same-polarity boolean region-quantifier chains. ----

  /// Flattens a right- or left-nested chain of `op` into operand order.
  static void FlattenChain(const PlanPtr& node, PlanOp op,
                           std::vector<PlanPtr>* out) {
    if (node->op == op) {
      FlattenChain(node->children[0], op, out);
      FlattenChain(node->children[1], op, out);
    } else {
      out->push_back(node);
    }
  }

  static void FlattenChainConst(const PlanNode& node, PlanOp op,
                                std::vector<const PlanNode*>* out) {
    if (node.op == op) {
      FlattenChainConst(*node.children[0], op, out);
      FlattenChainConst(*node.children[1], op, out);
    } else {
      out->push_back(&node);
    }
  }

  static int CostClass(const PlanNode& node) {
    switch (node.op) {
      case PlanOp::kConstBool:
        return 0;
      case PlanOp::kRegionAtom:
      case PlanOp::kSetMember:
        return 1;
      case PlanOp::kNotBool:
        return CostClass(*node.children[0]);
      case PlanOp::kAndBool:
      case PlanOp::kOrBool:
      case PlanOp::kImpliesBool:
      case PlanOp::kIffBool: {
        int worst = 0;
        for (const PlanPtr& c : node.children) {
          worst = std::max(worst, CostClass(*c));
        }
        return worst;
      }
      case PlanOp::kAnyRegion:
      case PlanOp::kAllRegion:
        return 4;
      case PlanOp::kNonEmpty:
        return 5;
      case PlanOp::kFixpointMember:
      case PlanOp::kClosureMember:
      case PlanOp::kRbitMember:
        return 6;
      default:
        return 5;  // symbolic operand reached through lift_bool etc.
    }
  }

  /// Single-variable cheap guards on `var` among the chain body's top-level
  /// conjuncts — the estimated-fan-out heuristic's selectivity signal: a
  /// guarded variable's effective fan-out is below |Reg|, so it loops
  /// outermost.
  static size_t GuardCount(const PlanNode& body, const std::string& var) {
    const PlanNode* scan = &body;
    if (scan->op == PlanOp::kImpliesBool) scan = scan->children[0].get();
    std::vector<const PlanNode*> conjuncts;
    if (scan->op == PlanOp::kAndBool) {
      FlattenChainConst(*scan, PlanOp::kAndBool, &conjuncts);
    } else {
      conjuncts.push_back(scan);
    }
    size_t count = 0;
    for (const PlanNode* conj : conjuncts) {
      if (CostClass(*conj) <= 1 && conj->free_region.size() == 1 &&
          conj->free_region[0] == var) {
        ++count;
      }
    }
    return count;
  }

  PlanPtr ReorderQuantifiers(PlanPtr node) {
    if ((node->op == PlanOp::kAnyRegion || node->op == PlanOp::kAllRegion) &&
        node->children[0]->op == node->op) {
      // Collect the directly-nested chain.
      std::vector<PlanNode*> chain;
      PlanNode* cursor = node.get();
      while (cursor->op == node->op) {
        chain.push_back(cursor);
        if (cursor->children[0]->op != node->op) break;
        cursor = cursor->children[0].get();
      }
      const PlanNode& body = *chain.back()->children[0];
      std::vector<std::string> vars;
      vars.reserve(chain.size());
      for (PlanNode* q : chain) vars.push_back(q->region_var);
      std::vector<std::string> ordered = vars;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [&](const std::string& a, const std::string& b) {
                         return GuardCount(body, a) > GuardCount(body, b);
                       });
      if (ordered != vars) {
        ++stats_->reordered_quantifiers;
        for (size_t i = 0; i < chain.size(); ++i) {
          chain[i]->region_var = ordered[i];
        }
        // Free-variable sets of the links changed; rebuild inside out.
        for (size_t i = chain.size(); i-- > 0;) {
          DeriveAnnotations(chain[i], n_);
        }
      }
    }
    for (PlanPtr& child : node->children) {
      child = ReorderQuantifiers(std::move(child));
    }
    DeriveAnnotations(node.get(), n_);
    return node;
  }

  // ---- Pass 4: hoist loop-invariant conjuncts out of region loops. ----

  PlanPtr Hoist(PlanPtr node) {
    for (PlanPtr& child : node->children) child = Hoist(std::move(child));
    DeriveAnnotations(node.get(), n_);
    if (node->op != PlanOp::kAnyRegion && node->op != PlanOp::kAllRegion) {
      return node;
    }
    const std::string& var = node->region_var;
    const PlanPtr& body = node->children[0];

    auto mentions = [&](const PlanPtr& c) {
      return std::binary_search(c->free_region.begin(), c->free_region.end(),
                                var);
    };

    // forall X (inv & dep -> rhs)  ==>  inv -> forall X (dep -> rhs).
    // Valid for every |Reg| (an empty loop makes both sides true).
    if (node->op == PlanOp::kAllRegion &&
        body->op == PlanOp::kImpliesBool) {
      std::vector<PlanPtr> guard, inv, dep;
      FlattenChain(body->children[0], PlanOp::kAndBool, &guard);
      for (const PlanPtr& conj : guard) {
        (mentions(conj) ? dep : inv).push_back(conj);
      }
      if (!inv.empty()) {
        stats_->hoisted_invariants += inv.size();
        PlanPtr rest =
            dep.empty() ? body->children[1]
                        : MakeBinary(PlanOp::kImpliesBool, BuildAnd(dep),
                                     body->children[1]);
        PlanPtr loop = MakeQuantifier(node->op, var, std::move(rest));
        return MakeBinary(PlanOp::kImpliesBool, BuildAnd(inv),
                          std::move(loop));
      }
      return node;
    }

    // exists X (inv & dep)  ==>  inv & exists X dep  (any |Reg|);
    // forall X (inv & dep)  ==>  inv & forall X dep  (needs |Reg| >= 1).
    if (body->op == PlanOp::kAndBool &&
        (node->op == PlanOp::kAnyRegion || n_ >= 1)) {
      std::vector<PlanPtr> conjuncts, inv, dep;
      FlattenChain(body, PlanOp::kAndBool, &conjuncts);
      for (const PlanPtr& conj : conjuncts) {
        (mentions(conj) ? dep : inv).push_back(conj);
      }
      if (!inv.empty()) {
        stats_->hoisted_invariants += inv.size();
        PlanPtr loop;
        if (dep.empty()) {
          loop = ConstBool(node->op == PlanOp::kAllRegion || n_ > 0);
        } else {
          loop = MakeQuantifier(node->op, var, BuildAnd(dep));
        }
        inv.push_back(std::move(loop));
        return BuildAnd(std::move(inv));
      }
    }
    return node;
  }

  // ---- Pass 5: cheapest-first ordering of boolean and/or chains. ----

  PlanPtr OrderConjuncts(PlanPtr node) {
    if (node->op == PlanOp::kAndBool || node->op == PlanOp::kOrBool) {
      std::vector<PlanPtr> items;
      FlattenChain(node, node->op, &items);
      for (PlanPtr& item : items) item = OrderConjuncts(std::move(item));
      std::vector<PlanPtr> ordered = items;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const PlanPtr& a, const PlanPtr& b) {
                         return CostClass(*a) < CostClass(*b);
                       });
      if (!std::equal(ordered.begin(), ordered.end(), items.begin())) {
        ++stats_->reordered_conjuncts;
      }
      PlanPtr out = ordered.back();
      for (size_t i = ordered.size() - 1; i-- > 0;) {
        out = MakeBinary(node->op, ordered[i], std::move(out));
      }
      return out;
    }
    for (PlanPtr& child : node->children) {
      child = OrderConjuncts(std::move(child));
    }
    DeriveAnnotations(node.get(), n_);
    return node;
  }

  // ---- Pass 6: common-subplan elimination (hash-consing). ----

  PlanPtr Cse(PlanPtr node) {
    for (PlanPtr& child : node->children) child = Cse(std::move(child));
    const std::string key = Fingerprint(*node);
    auto [it, inserted] = cse_table_.try_emplace(key, node);
    if (!inserted) {
      if (it->second != node) ++stats_->cse_merged;
      return it->second;
    }
    cse_ids_.emplace(node.get(), cse_ids_.size());
    return node;
  }

  std::string Fingerprint(const PlanNode& node) {
    std::string key = std::to_string(static_cast<int>(node.op)) + "|" +
                      std::to_string(static_cast<int>(node.source_kind));
    key += "|" + std::string(node.const_bool ? "t" : "f");
    if (node.const_formula) key += "|" + node.const_formula->ToString();
    auto add_exprs = [&key](const std::vector<AffineExpr>& exprs) {
      for (const AffineExpr& e : exprs) {
        key += ";";
        for (const Rational& c : e.coeffs) key += c.ToString() + ",";
        key += "+" + e.constant.ToString();
      }
    };
    key += "|";
    add_exprs(node.subst);
    key += "|";
    add_exprs(node.hull_project);
    key += "|" + std::to_string(node.hull_arity);
    key += "|" + std::to_string(node.column);
    key += "|" + std::to_string(node.dim_value);
    key += "|" + node.set_var + "|" + node.region_var;
    for (const std::string& r : node.region_args) key += "," + r;
    key += "|";
    for (const std::string& r : node.region_args2) key += "," + r;
    key += "|";
    for (const std::string& r : node.bound_vars) key += "," + r;
    for (const PlanPtr& child : node.children) {
      key += "|#" + std::to_string(cse_ids_.at(child.get()));
    }
    return key;
  }

  // ---- Pass 7: caching decisions (replaces the legacy memo check). ----

  void MarkCacheable(PlanNode* node) {
    if (!mark_seen_.insert(node).second) return;
    const bool narrow_key =
        node->free_sets.empty() || node->free_region.size() <= 1;
    if (node->worth_caching && narrow_key &&
        node->op != PlanOp::kConstFormula && node->op != PlanOp::kConstBool) {
      node->cache = CachePolicy::kByRegionKey;
      ++stats_->cacheable_marked;
    }
    for (const PlanPtr& child : node->children) MarkCacheable(child.get());
  }

  size_t n_;
  size_t m_;
  PlanPassStats* stats_;
  std::map<std::string, PlanPtr> cse_table_;
  std::map<const PlanNode*, size_t> cse_ids_;
  std::set<const PlanNode*> mark_seen_;
};

}  // namespace

void OptimizePlan(CompiledPlan* plan, PlanPassStats* stats) {
  LCDB_CHECK(plan != nullptr && plan->root != nullptr);
  Optimizer optimizer(plan->num_regions, plan->num_columns, stats);
  plan->root = optimizer.Run(std::move(plan->root));
  stats->plan_nodes = CountPlanNodes(*plan->root);
}

}  // namespace lcdb
