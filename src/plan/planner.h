#ifndef LCDB_PLAN_PLANNER_H_
#define LCDB_PLAN_PLANNER_H_

#include "core/ast.h"
#include "core/typecheck.h"
#include "db/region_extension.h"
#include "plan/plan_ir.h"

namespace lcdb {

/// Lowers a typechecked query AST into a raw plan (plan/plan_ir.h).
///
/// The lowering is a faithful, mode-annotated image of the legacy
/// evaluator's recursion: the root and every element-sort subformula become
/// symbolic operators, fixed-point / closure bodies become boolean
/// operators, and each atom is compiled as far as it can be without a
/// region environment — comparison and relation atoms fold to constant
/// formulas, in(...)/hull terms fold to affine substitution maps, element
/// quantifiers to column indices. A raw plan executed without optimization
/// therefore reproduces the legacy walk's answers byte for byte.
CompiledPlan BuildPlan(const FormulaNode& query, const TypeInfo& info,
                       const RegionExtension& ext);

}  // namespace lcdb

#endif  // LCDB_PLAN_PLANNER_H_
