#include "plan/bytecode.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "util/status.h"

namespace lcdb {

const char* VmOpName(VmOp op) {
  switch (op) {
    case VmOp::kEnterSym: return "enter.sym";
    case VmOp::kLeaveSym: return "leave.sym";
    case VmOp::kEnterBool: return "enter.bool";
    case VmOp::kLeaveBool: return "leave.bool";
    case VmOp::kConstFormula: return "const.formula";
    case VmOp::kInRegion: return "in_region";
    case VmOp::kLiftBool: return "lift_bool";
    case VmOp::kNegSym: return "neg.sym";
    case VmOp::kAndSym: return "and.sym";
    case VmOp::kOrSym: return "or.sym";
    case VmOp::kIffSym: return "iff.sym";
    case VmOp::kLoadTrueSym: return "load.true";
    case VmOp::kLoadFalseSym: return "load.false";
    case VmOp::kHullFinish: return "hull.finish";
    case VmOp::kQeExists: return "qe.exists";
    case VmOp::kQeForall: return "qe.forall";
    case VmOp::kLoadBool: return "load.bool";
    case VmOp::kNotBool: return "not.bool";
    case VmOp::kEqBool: return "eq.bool";
    case VmOp::kRegionAtom: return "region_atom";
    case VmOp::kSetMember: return "set_member";
    case VmOp::kFixpointMember: return "fixpoint";
    case VmOp::kClosureMember: return "closure";
    case VmOp::kRbitFinish: return "rbit.finish";
    case VmOp::kNonEmpty: return "nonempty";
    case VmOp::kJmp: return "jmp";
    case VmOp::kJmpIfSymFalse: return "jmp.sym_false";
    case VmOp::kJmpIfSymTrue: return "jmp.sym_true";
    case VmOp::kJmpIfFalseBool: return "jmp.false";
    case VmOp::kJmpIfTrueBool: return "jmp.true";
    case VmOp::kLoadImm: return "load.imm";
    case VmOp::kLoopHead: return "loop.head";
    case VmOp::kLoopNext: return "loop.next";
    case VmOp::kSetRegion: return "set_region";
    case VmOp::kBeginOp: return "begin.op";
    case VmOp::kEndOp: return "end.op";
    case VmOp::kCallSym: return "call.sym";
    case VmOp::kCallBool: return "call.bool";
    case VmOp::kRet: return "ret";
    case VmOp::kHalt: return "halt";
  }
  return "?";
}

namespace {

/// Lowers the plan DAG into a BytecodeProgram. Registers are allocated with
/// a simple depth counter per proc (the plan inside one proc is a tree —
/// shared nodes become proc calls), so the frame size equals the deepest
/// operand chain. Jump targets are patched within each proc.
class Lowerer {
 public:
  explicit Lowerer(const CompiledPlan& plan) : plan_(plan) {
    program_.plan = plan;
    program_.num_columns = plan.num_columns;
    program_.num_regions = plan.num_regions;
  }

  BytecodeProgram Lower() {
    Scan(*plan_.root);
    // Deterministic slot order: name-sorted, matching the tree executor's
    // name-ordered cache keys.
    for (const std::string& n : region_names_) {
      region_slots_.emplace(n, static_cast<uint32_t>(
                                   program_.region_slot_names.size()));
      program_.region_slot_names.push_back(n);
    }
    for (const std::string& n : set_names_) {
      set_slots_.emplace(n,
                         static_cast<uint32_t>(program_.set_slot_names.size()));
      program_.set_slot_names.push_back(n);
    }
    // Proc 0: the main program evaluating the (always symbolic) root.
    builds_.emplace_back();
    builds_[0].symbolic = true;
    stack_.push_back(0);
    const uint32_t dest = AllocS();
    LowerSym(*plan_.root, dest);
    FreeS();
    Emit(VmOp::kHalt);
    stack_.pop_back();
    for (ProcBuild& b : builds_) {
      VmProc proc;
      proc.code = std::move(b.code);
      proc.num_sregs = b.max_s;
      proc.num_bregs = b.max_b;
      proc.num_iregs = b.max_i;
      proc.symbolic = b.symbolic;
      proc.origin = b.origin;
      program_.procs.push_back(std::move(proc));
    }
    program_.num_icache_slots = next_icache_;
    return std::move(program_);
  }

  const std::map<const PlanNode*, int>& node_ids() const { return node_ids_; }

 private:
  struct ProcBuild {
    std::vector<VmInstr> code;
    uint32_t cur_s = 0, max_s = 0;
    uint32_t cur_b = 0, max_b = 0;
    uint32_t cur_i = 0, max_i = 0;
    bool symbolic = true;
    const PlanNode* origin = nullptr;
  };

  // ---- Pass 1: use counts, stable node ids, environment slot names. ----

  void Scan(const PlanNode& node) {
    if (++use_count_[&node] > 1) return;
    node_ids_.emplace(&node, static_cast<int>(node_ids_.size()));
    if (!node.region_var.empty()) region_names_.insert(node.region_var);
    for (const std::string& r : node.region_args) region_names_.insert(r);
    for (const std::string& r : node.region_args2) region_names_.insert(r);
    for (const std::string& r : node.bound_vars) region_names_.insert(r);
    if (node.op == PlanOp::kSetMember || node.op == PlanOp::kFixpointMember) {
      set_names_.insert(node.set_var);
    }
    for (const PlanPtr& child : node.children) Scan(*child);
  }

  // ---- Emit helpers. ----

  ProcBuild& Cur() { return builds_[stack_.back()]; }

  size_t Emit(VmOp op, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0,
              uint32_t imm = 0, const PlanNode* node = nullptr) {
    Cur().code.push_back(VmInstr{op, a, b, c, imm, node});
    return Cur().code.size() - 1;
  }

  uint32_t Here() { return static_cast<uint32_t>(Cur().code.size()); }
  void PatchB(size_t pc) { Cur().code[pc].b = Here(); }

  uint32_t AllocS() {
    ProcBuild& p = Cur();
    p.max_s = std::max(p.max_s, ++p.cur_s);
    return p.cur_s - 1;
  }
  void FreeS() { --Cur().cur_s; }
  uint32_t AllocB() {
    ProcBuild& p = Cur();
    p.max_b = std::max(p.max_b, ++p.cur_b);
    return p.cur_b - 1;
  }
  void FreeB() { --Cur().cur_b; }
  uint32_t AllocI() {
    ProcBuild& p = Cur();
    p.max_i = std::max(p.max_i, ++p.cur_i);
    return p.cur_i - 1;
  }
  void FreeI() { --Cur().cur_i; }

  uint32_t RegionSlot(const std::string& name) const {
    auto it = region_slots_.find(name);
    LCDB_CHECK(it != region_slots_.end());
    return it->second;
  }
  uint32_t SetSlot(const std::string& name) const {
    auto it = set_slots_.find(name);
    LCDB_CHECK(it != set_slots_.end());
    return it->second;
  }
  std::vector<uint32_t> Slots(const std::vector<std::string>& names) const {
    std::vector<uint32_t> out;
    out.reserve(names.size());
    for (const std::string& n : names) out.push_back(RegionSlot(n));
    return out;
  }

  /// Memo descriptor id (+1; 0 = not cacheable) replicating the tree
  /// executor's CacheKey layout for this node.
  uint32_t MemoDescId(const PlanNode& node) {
    if (node.cache != CachePolicy::kByRegionKey) return 0;
    auto it = memo_ids_.find(&node);
    if (it != memo_ids_.end()) return it->second;
    VmMemoDesc desc;
    desc.region_slots = Slots(node.free_region);  // name-sorted already
    for (const std::string& s : node.free_sets) {
      desc.set_slots.push_back(SetSlot(s));
    }
    program_.memo_descs.push_back(std::move(desc));
    const uint32_t id = static_cast<uint32_t>(program_.memo_descs.size());
    memo_ids_.emplace(&node, id);
    return id;
  }

  /// Proc for a shared node or a fixpoint/closure body; created on first
  /// request. Creation switches the emit context onto the new proc, so
  /// nested shared nodes recurse naturally.
  uint32_t ProcFor(const PlanNode& node, bool symbolic) {
    auto it = proc_ids_.find(&node);
    if (it != proc_ids_.end()) return it->second;
    builds_.emplace_back();
    const uint32_t id = static_cast<uint32_t>(builds_.size() - 1);
    builds_[id].symbolic = symbolic;
    builds_[id].origin = &node;
    proc_ids_.emplace(&node, id);
    stack_.push_back(id);
    if (symbolic) {
      const uint32_t dest = AllocS();
      EmitSymNode(node, dest);
      FreeS();
    } else {
      const uint32_t dest = AllocB();
      EmitBoolNode(node, dest);
      FreeB();
    }
    Emit(VmOp::kRet);
    stack_.pop_back();
    return id;
  }

  // ---- Node lowering. ----

  void LowerSym(const PlanNode& node, uint32_t dest) {
    if (use_count_.at(&node) > 1) {
      Emit(VmOp::kCallSym, dest, 0, 0, ProcFor(node, /*symbolic=*/true),
           &node);
      return;
    }
    EmitSymNode(node, dest);
  }

  void LowerBool(const PlanNode& node, uint32_t dest) {
    if (use_count_.at(&node) > 1) {
      Emit(VmOp::kCallBool, dest, 0, 0, ProcFor(node, /*symbolic=*/false),
           &node);
      return;
    }
    EmitBoolNode(node, dest);
  }

  /// Symbolic node: Enter (checkpoint/counters/memo probe), the operator
  /// body in the exact tree-walk evaluation order, Leave (memo store).
  void EmitSymNode(const PlanNode& node, uint32_t dest) {
    const uint32_t memo = MemoDescId(node);
    const size_t enter = Emit(VmOp::kEnterSym, dest, 0, 0, memo, &node);
    switch (node.op) {
      case PlanOp::kConstFormula:
        Emit(VmOp::kConstFormula, dest, 0, 0, 0, &node);
        break;
      case PlanOp::kInRegion:
        Emit(VmOp::kInRegion, dest, RegionSlot(node.region_args[0]), 0, 0,
             &node);
        break;
      case PlanOp::kLiftBool: {
        const uint32_t b = AllocB();
        LowerBool(*node.children[0], b);
        Emit(VmOp::kLiftBool, dest, b, 0, 0, &node);
        FreeB();
        break;
      }
      case PlanOp::kNegateSym:
        LowerSym(*node.children[0], dest);
        Emit(VmOp::kNegSym, dest, 0, 0, 0, &node);
        break;
      case PlanOp::kAndSym: {
        LowerSym(*node.children[0], dest);
        const size_t skip = Emit(VmOp::kJmpIfSymFalse, dest);
        const uint32_t rhs = AllocS();
        LowerSym(*node.children[1], rhs);
        Emit(VmOp::kAndSym, dest, rhs, 0, 0, &node);
        FreeS();
        PatchB(skip);
        break;
      }
      case PlanOp::kOrSym: {
        LowerSym(*node.children[0], dest);
        const size_t skip = Emit(VmOp::kJmpIfSymTrue, dest);
        const uint32_t rhs = AllocS();
        LowerSym(*node.children[1], rhs);
        Emit(VmOp::kOrSym, dest, rhs, 0, 0, &node);
        FreeS();
        PatchB(skip);
        break;
      }
      case PlanOp::kImpliesSym: {
        // a false => True(m); otherwise !a | b, negating before the rhs
        // evaluates — the tree's `a.Negate().Or(Eval(rhs))` sequencing.
        LowerSym(*node.children[0], dest);
        const size_t to_true = Emit(VmOp::kJmpIfSymFalse, dest);
        Emit(VmOp::kNegSym, dest, 0, 0, 0, &node);
        const uint32_t rhs = AllocS();
        LowerSym(*node.children[1], rhs);
        Emit(VmOp::kOrSym, dest, rhs, 0, 0, &node);
        FreeS();
        const size_t to_end = Emit(VmOp::kJmp);
        PatchB(to_true);
        Emit(VmOp::kLoadTrueSym, dest, 0, 0, 0, &node);
        PatchB(to_end);
        break;
      }
      case PlanOp::kIffSym: {
        LowerSym(*node.children[0], dest);
        const uint32_t rhs = AllocS();
        LowerSym(*node.children[1], rhs);
        Emit(VmOp::kIffSym, dest, rhs, 0, 0, &node);
        FreeS();
        break;
      }
      case PlanOp::kHull: {
        Emit(VmOp::kBeginOp, 0, 0, 0, kOpTimed, &node);
        const uint32_t src = AllocS();
        LowerSym(*node.children[0], src);
        Emit(VmOp::kHullFinish, dest, src, 0, 0, &node);
        FreeS();
        Emit(VmOp::kEndOp, 0, 0, 0, kOpTimed, &node);
        break;
      }
      case PlanOp::kExistsElim:
      case PlanOp::kForallElim: {
        Emit(VmOp::kBeginOp, 0, 0, 0, kOpTimed | kOpCountQe, &node);
        const uint32_t src = AllocS();
        LowerSym(*node.children[0], src);
        Emit(node.op == PlanOp::kExistsElim ? VmOp::kQeExists
                                            : VmOp::kQeForall,
             dest, src, 0, 0, &node);
        FreeS();
        Emit(VmOp::kEndOp, 0, 0, 0, kOpTimed, &node);
        break;
      }
      case PlanOp::kExpandExists:
      case PlanOp::kExpandForall: {
        const bool exists = node.op == PlanOp::kExpandExists;
        Emit(VmOp::kBeginOp, 0, 0, 0, kOpTimed | kOpCountExpand, &node);
        Emit(exists ? VmOp::kLoadFalseSym : VmOp::kLoadTrueSym, dest, 0, 0, 0,
             &node);
        const uint32_t ir = AllocI();
        Emit(VmOp::kLoadImm, ir, 0, 0, 0, &node);
        const uint32_t head = Here();
        // Stride 0: body Enter instructions already checkpoint at the tree
        // walk's per-iteration cadence (DESIGN.md, "Governor checkpoints").
        const size_t loop = Emit(VmOp::kLoopHead, ir, 0, 0, 0, &node);
        Emit(VmOp::kSetRegion, RegionSlot(node.region_var), ir, 0, 0, &node);
        const uint32_t src = AllocS();
        LowerSym(*node.children[0], src);
        Emit(exists ? VmOp::kOrSym : VmOp::kAndSym, dest, src, 0, 0, &node);
        FreeS();
        const size_t brk =
            Emit(exists ? VmOp::kJmpIfSymTrue : VmOp::kJmpIfSymFalse, dest);
        Emit(VmOp::kLoopNext, ir, head, 0, 0, &node);
        PatchB(loop);
        PatchB(brk);
        FreeI();
        Emit(VmOp::kEndOp, 0, 0, 0, kOpTimed, &node);
        break;
      }
      default:
        LCDB_CHECK_MSG(false, "boolean operator in symbolic lowering");
    }
    Emit(VmOp::kLeaveSym, dest, 0, 0, memo, &node);
    Cur().code[enter].b = Here();  // memo hit resumes after Leave
  }

  void EmitBoolNode(const PlanNode& node, uint32_t dest) {
    const uint32_t memo = MemoDescId(node);
    const size_t enter = Emit(VmOp::kEnterBool, dest, 0, 0, memo, &node);
    switch (node.op) {
      case PlanOp::kConstBool:
        Emit(VmOp::kLoadBool, dest, 0, 0, node.const_bool ? 1 : 0, &node);
        break;
      case PlanOp::kNotBool:
        LowerBool(*node.children[0], dest);
        Emit(VmOp::kNotBool, dest, 0, 0, 0, &node);
        break;
      case PlanOp::kAndBool: {
        LowerBool(*node.children[0], dest);
        const size_t skip = Emit(VmOp::kJmpIfFalseBool, dest);
        LowerBool(*node.children[1], dest);
        PatchB(skip);
        break;
      }
      case PlanOp::kOrBool: {
        LowerBool(*node.children[0], dest);
        const size_t skip = Emit(VmOp::kJmpIfTrueBool, dest);
        LowerBool(*node.children[1], dest);
        PatchB(skip);
        break;
      }
      case PlanOp::kImpliesBool: {
        LowerBool(*node.children[0], dest);
        const size_t to_true = Emit(VmOp::kJmpIfFalseBool, dest);
        LowerBool(*node.children[1], dest);
        const size_t to_end = Emit(VmOp::kJmp);
        PatchB(to_true);
        Emit(VmOp::kLoadBool, dest, 0, 0, 1, &node);
        PatchB(to_end);
        break;
      }
      case PlanOp::kIffBool: {
        LowerBool(*node.children[0], dest);
        const uint32_t rhs = AllocB();
        LowerBool(*node.children[1], rhs);
        Emit(VmOp::kEqBool, dest, rhs, 0, 0, &node);
        FreeB();
        break;
      }
      case PlanOp::kAnyRegion:
      case PlanOp::kAllRegion: {
        const bool any = node.op == PlanOp::kAnyRegion;
        // Counter bracket only: the tree walk times expand.* but not the
        // boolean region loops.
        Emit(VmOp::kBeginOp, 0, 0, 0, kOpCountExpand, &node);
        Emit(VmOp::kLoadBool, dest, 0, 0, any ? 0 : 1, &node);
        const uint32_t ir = AllocI();
        Emit(VmOp::kLoadImm, ir, 0, 0, 0, &node);
        const uint32_t head = Here();
        const size_t loop = Emit(VmOp::kLoopHead, ir, 0, 0, 0, &node);
        Emit(VmOp::kSetRegion, RegionSlot(node.region_var), ir, 0, 0, &node);
        LowerBool(*node.children[0], dest);
        const size_t brk =
            Emit(any ? VmOp::kJmpIfTrueBool : VmOp::kJmpIfFalseBool, dest);
        Emit(VmOp::kLoopNext, ir, head, 0, 0, &node);
        PatchB(loop);
        PatchB(brk);
        FreeI();
        break;
      }
      case PlanOp::kRegionAtom: {
        const uint32_t s0 = RegionSlot(node.region_args[0]);
        const uint32_t s1 = node.region_args.size() > 1
                                ? RegionSlot(node.region_args[1])
                                : 0;
        Emit(VmOp::kRegionAtom, dest, s0, s1, 0, &node);
        break;
      }
      case PlanOp::kSetMember: {
        program_.slot_lists.push_back(Slots(node.region_args));
        Emit(VmOp::kSetMember, dest, SetSlot(node.set_var), 0,
             static_cast<uint32_t>(program_.slot_lists.size() - 1), &node);
        break;
      }
      case PlanOp::kFixpointMember: {
        VmFixpointSite site;
        site.body_proc = ProcFor(*node.children[0], /*symbolic=*/false);
        site.set_slot = SetSlot(node.set_var);
        site.bound_slots = Slots(node.bound_vars);
        site.arg_slots = Slots(node.region_args);
        program_.fixpoint_sites.push_back(std::move(site));
        Emit(VmOp::kFixpointMember, dest, 0, 0,
             static_cast<uint32_t>(program_.fixpoint_sites.size() - 1),
             &node);
        break;
      }
      case PlanOp::kClosureMember: {
        VmClosureSite site;
        site.body_proc = ProcFor(*node.children[0], /*symbolic=*/false);
        site.bound_slots = Slots(node.bound_vars);
        site.arg_slots = Slots(node.region_args);
        site.arg2_slots = Slots(node.region_args2);
        program_.closure_sites.push_back(std::move(site));
        Emit(VmOp::kClosureMember, dest, 0, 0,
             static_cast<uint32_t>(program_.closure_sites.size() - 1), &node);
        break;
      }
      case PlanOp::kRbitMember: {
        Emit(VmOp::kBeginOp, 0, 0, 0, kOpTimed, &node);
        const uint32_t src = AllocS();
        LowerSym(*node.children[0], src);
        program_.rbit_sites.push_back(
            VmRbitSite{RegionSlot(node.region_args[0]),
                       RegionSlot(node.region_args[1])});
        Emit(VmOp::kRbitFinish, dest, src, NextIcache(),
             static_cast<uint32_t>(program_.rbit_sites.size() - 1), &node);
        FreeS();
        Emit(VmOp::kEndOp, 0, 0, 0, kOpTimed, &node);
        break;
      }
      case PlanOp::kNonEmpty: {
        const uint32_t src = AllocS();
        LowerSym(*node.children[0], src);
        Emit(VmOp::kNonEmpty, dest, src, NextIcache(), 0, &node);
        FreeS();
        break;
      }
      default:
        LCDB_CHECK_MSG(false, "symbolic operator in boolean lowering");
    }
    Emit(VmOp::kLeaveBool, dest, 0, 0, memo, &node);
    Cur().code[enter].b = Here();
  }

  uint32_t NextIcache() { return next_icache_++; }

  const CompiledPlan& plan_;
  BytecodeProgram program_;
  std::vector<ProcBuild> builds_;
  std::vector<uint32_t> stack_;  ///< emit-context proc indices
  std::map<const PlanNode*, size_t> use_count_;
  std::map<const PlanNode*, int> node_ids_;
  std::map<const PlanNode*, uint32_t> proc_ids_;
  std::map<const PlanNode*, uint32_t> memo_ids_;
  std::set<std::string> region_names_;
  std::set<std::string> set_names_;
  std::map<std::string, uint32_t> region_slots_;
  std::map<std::string, uint32_t> set_slots_;
  uint32_t next_icache_ = 0;
};

std::string Pc(size_t pc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04zu", pc);
  return buf;
}

}  // namespace

BytecodeProgram CompileToBytecode(const CompiledPlan& plan) {
  LCDB_CHECK(plan.root != nullptr);
  return Lowerer(plan).Lower();
}

std::string DisassembleBytecode(const BytecodeProgram& program) {
  // Stable node ids in first-listing order — never pointers, so the
  // disassembly is byte-identical across runs (the goldens pin it).
  std::map<const PlanNode*, int> ids;
  auto node_ref = [&](const PlanNode* node) -> std::string {
    if (node == nullptr) return "";
    auto it = ids.find(node);
    if (it == ids.end()) {
      it = ids.emplace(node, static_cast<int>(ids.size())).first;
    }
    return "#" + std::to_string(it->second);
  };
  auto rname = [&](uint32_t slot) {
    return slot < program.region_slot_names.size()
               ? program.region_slot_names[slot]
               : "?";
  };

  std::string out;
  for (size_t p = 0; p < program.procs.size(); ++p) {
    const VmProc& proc = program.procs[p];
    out += "proc " + std::to_string(p);
    if (proc.origin == nullptr) {
      out += " (main)";
    } else {
      out += " (" + PlanOpName(proc.origin->op) + " " +
             node_ref(proc.origin) + ")";
    }
    out += ": " + std::string(proc.symbolic ? "sym" : "bool");
    out += " sregs=" + std::to_string(proc.num_sregs);
    out += " bregs=" + std::to_string(proc.num_bregs);
    out += " iregs=" + std::to_string(proc.num_iregs);
    out += "\n";
    for (size_t pc = 0; pc < proc.code.size(); ++pc) {
      const VmInstr& in = proc.code[pc];
      out += "  " + Pc(pc) + "  ";
      std::string line = VmOpName(in.op);
      line.resize(std::max<size_t>(line.size(), 14), ' ');
      switch (in.op) {
        case VmOp::kEnterSym:
        case VmOp::kEnterBool:
          line += (in.op == VmOp::kEnterSym ? "s" : "b") +
                  std::to_string(in.a) + " " + node_ref(in.node) + " " +
                  PlanOpName(in.node->op);
          if (in.imm != 0) {
            line += " memo=m" + std::to_string(in.imm - 1) + " skip->" +
                    Pc(in.b);
          }
          break;
        case VmOp::kLeaveSym:
        case VmOp::kLeaveBool:
          line += (in.op == VmOp::kLeaveSym ? "s" : "b") +
                  std::to_string(in.a);
          if (in.imm != 0) line += " memo=m" + std::to_string(in.imm - 1);
          break;
        case VmOp::kConstFormula: {
          std::string f = in.node->const_formula->ToString();
          if (f.size() > 32) f = f.substr(0, 29) + "...";
          line += "s" + std::to_string(in.a) + " {" + f + "}";
          break;
        }
        case VmOp::kInRegion:
          line += "s" + std::to_string(in.a) + " " + rname(in.b);
          break;
        case VmOp::kLiftBool:
          line += "s" + std::to_string(in.a) + " b" + std::to_string(in.b);
          break;
        case VmOp::kNegSym:
        case VmOp::kLoadTrueSym:
        case VmOp::kLoadFalseSym:
          line += "s" + std::to_string(in.a);
          break;
        case VmOp::kAndSym:
        case VmOp::kOrSym:
        case VmOp::kIffSym:
          line += "s" + std::to_string(in.a) + " s" + std::to_string(in.b);
          break;
        case VmOp::kHullFinish:
        case VmOp::kQeExists:
        case VmOp::kQeForall:
          line += "s" + std::to_string(in.a) + " s" + std::to_string(in.b);
          if (in.op != VmOp::kHullFinish) {
            line += " col" + std::to_string(in.node->column);
          }
          break;
        case VmOp::kLoadBool:
          line += "b" + std::to_string(in.a) + " " +
                  (in.imm != 0 ? "true" : "false");
          break;
        case VmOp::kNotBool:
          line += "b" + std::to_string(in.a);
          break;
        case VmOp::kEqBool:
          line += "b" + std::to_string(in.a) + " b" + std::to_string(in.b);
          break;
        case VmOp::kRegionAtom:
          line += "b" + std::to_string(in.a) + " " + rname(in.b);
          if (in.node->region_args.size() > 1) line += "," + rname(in.c);
          break;
        case VmOp::kSetMember:
          line += "b" + std::to_string(in.a) + " " + in.node->set_var +
                  " tuple=t" + std::to_string(in.imm);
          break;
        case VmOp::kFixpointMember:
          line += "b" + std::to_string(in.a) + " site=f" +
                  std::to_string(in.imm) + " body=proc" +
                  std::to_string(program.fixpoint_sites[in.imm].body_proc);
          break;
        case VmOp::kClosureMember:
          line += "b" + std::to_string(in.a) + " site=c" +
                  std::to_string(in.imm) + " body=proc" +
                  std::to_string(program.closure_sites[in.imm].body_proc);
          break;
        case VmOp::kRbitFinish:
          line += "b" + std::to_string(in.a) + " s" + std::to_string(in.b) +
                  " ic" + std::to_string(in.c);
          break;
        case VmOp::kNonEmpty:
          line += "b" + std::to_string(in.a) + " s" + std::to_string(in.b) +
                  " ic" + std::to_string(in.c);
          break;
        case VmOp::kJmp:
          line += "->" + Pc(in.b);
          break;
        case VmOp::kJmpIfSymFalse:
        case VmOp::kJmpIfSymTrue:
          line += "s" + std::to_string(in.a) + " ->" + Pc(in.b);
          break;
        case VmOp::kJmpIfFalseBool:
        case VmOp::kJmpIfTrueBool:
          line += "b" + std::to_string(in.a) + " ->" + Pc(in.b);
          break;
        case VmOp::kLoadImm:
          line += "i" + std::to_string(in.a) + " " + std::to_string(in.imm);
          break;
        case VmOp::kLoopHead:
          line += "i" + std::to_string(in.a) + " exit->" + Pc(in.b) +
                  " stride=" + std::to_string(in.imm);
          break;
        case VmOp::kLoopNext:
          line += "i" + std::to_string(in.a) + " ->" + Pc(in.b);
          break;
        case VmOp::kSetRegion:
          line += rname(in.a) + " = i" + std::to_string(in.b);
          break;
        case VmOp::kBeginOp:
        case VmOp::kEndOp: {
          line += PlanOpName(in.node->op);
          if (in.op == VmOp::kBeginOp) {
            std::string flags;
            if (in.imm & kOpTimed) flags += ",timed";
            if (in.imm & kOpCountQe) flags += ",qe";
            if (in.imm & kOpCountExpand) flags += ",expand";
            if (!flags.empty()) line += " [" + flags.substr(1) + "]";
          }
          break;
        }
        case VmOp::kCallSym:
        case VmOp::kCallBool:
          line += (in.op == VmOp::kCallSym ? "s" : "b") +
                  std::to_string(in.a) + " proc" + std::to_string(in.imm) +
                  " " + node_ref(in.node);
          break;
        case VmOp::kRet:
        case VmOp::kHalt:
          break;
      }
      out += line + "\n";
    }
  }
  for (size_t i = 0; i < program.memo_descs.size(); ++i) {
    const VmMemoDesc& d = program.memo_descs[i];
    out += "memo m" + std::to_string(i) + ": regions={";
    for (size_t j = 0; j < d.region_slots.size(); ++j) {
      if (j > 0) out += ",";
      out += rname(d.region_slots[j]);
    }
    out += "}";
    if (!d.set_slots.empty()) {
      out += " sets={";
      for (size_t j = 0; j < d.set_slots.size(); ++j) {
        if (j > 0) out += ",";
        out += d.set_slots[j] < program.set_slot_names.size()
                   ? program.set_slot_names[d.set_slots[j]]
                   : "?";
      }
      out += "}";
    }
    out += "\n";
  }
  out += "-- " + std::to_string(program.procs.size()) + " proc(s), " +
         std::to_string(program.TotalInstructions()) + " instruction(s), " +
         std::to_string(program.num_icache_slots) + " inline cache slot(s)\n";
  return out;
}

}  // namespace lcdb
