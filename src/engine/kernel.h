#ifndef LCDB_ENGINE_KERNEL_H_
#define LCDB_ENGINE_KERNEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraint/canonical.h"
#include "constraint/conjunction.h"
#include "engine/kernel_stats.h"
#include "engine/lemma_db.h"
#include "lp/feasibility.h"

namespace lcdb {

namespace internal {

/// Least-recently-used cache keyed by (stable hash, canonical encoding).
/// The 64-bit hash is the bucket key; the full encoding resolves collisions
/// exactly, and every collision observation is reported through the
/// out-counter. Not thread-safe; the kernel serializes access.
template <typename Value>
class CanonicalLruCache {
 public:
  explicit CanonicalLruCache(size_t max_entries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Returns the cached value (refreshing its LRU position) or nullptr.
  const Value* Lookup(uint64_t hash, const std::string& encoding,
                      uint64_t* collisions) {
    auto bucket = index_.find(hash);
    if (bucket == index_.end()) return nullptr;
    for (auto node_it : bucket->second) {
      if (node_it->encoding == encoding) {
        nodes_.splice(nodes_.begin(), nodes_, node_it);
        return &nodes_.front().value;
      }
    }
    ++*collisions;
    return nullptr;
  }

  void Insert(uint64_t hash, std::string encoding, Value value,
              uint64_t* evictions) {
    nodes_.push_front(Node{hash, std::move(encoding), std::move(value)});
    index_[hash].push_back(nodes_.begin());
    while (nodes_.size() > max_entries_) {
      auto last = std::prev(nodes_.end());
      auto bucket = index_.find(last->hash);
      auto& chain = bucket->second;
      chain.erase(std::remove(chain.begin(), chain.end(), last), chain.end());
      if (chain.empty()) index_.erase(bucket);
      nodes_.pop_back();
      ++*evictions;
    }
  }

  size_t size() const { return nodes_.size(); }

  void Clear() {
    nodes_.clear();
    index_.clear();
  }

 private:
  struct Node {
    uint64_t hash;
    std::string encoding;
    Value value;
  };
  using NodeList = std::list<Node>;

  size_t max_entries_;
  NodeList nodes_;  ///< front = most recently used
  std::unordered_map<uint64_t, std::vector<typename NodeList::iterator>>
      index_;
};

}  // namespace internal

/// Memoizing front-end for the LP feasibility oracle — the single choke
/// point every expensive decision in the system flows through (DNF pruning,
/// Fourier-Motzkin redundancy elimination, arrangement probes,
/// decomposition cell tests, semantic implication/equivalence).
///
/// Systems are canonicalized (constraint/canonical.h) before lookup, so the
/// same conjunction reaching the oracle from different layers, in different
/// atom orders or scalings, is decided once and served from cache after.
/// Both question kinds are memoized:
///
///  * feasibility:  canonical system -> FeasibilityResult
///    (decision plus rational witness);
///  * implication:  (canonical system, canonical atom) ->
///    whether `system AND NOT(atom)` is satisfiable, the redundancy /
///    implication primitive.
///
/// The default backing store is an activity-managed lemma database
/// (engine/lemma_db.h): lemmas survive across queries, are scored by
/// activity with periodic decay, evicted by quality tier instead of
/// recency, and carry per-database-disjunct occurrence lists that make
/// InvalidateDisjunct() possible. The lemma DB's lifetime is decoupled
/// from the kernel — pass a shared_ptr to share one store across several
/// kernels (ScopedKernel scopes, server worker kernels); by default a
/// memoizing kernel creates its own. Options::use_lemma_db = false keeps
/// the original per-kernel LRU maps as a measured baseline
/// (bench_reglfp's BM_LemmaDbVsLru); verdicts are byte-identical under
/// either backend, or with memoization off — only hit rates differ.
///
/// All kernel state is guarded by a mutex (the lemma DB has its own) so a
/// later PR can fan region-quantifier expansion out across threads against
/// one shared kernel; the underlying LP solve runs outside any lock.
///
/// Options::memoize turns memoization off entirely (every query pays an
/// oracle call); canonicalization, trivial-answer short-circuits and
/// telemetry stay active, which is exactly what the cache ablation
/// measures.
class ConstraintKernel {
 public:
  struct Options {
    /// Off switch for all memoization (ablation).
    bool memoize = true;
    /// Occupancy bound: the lemma DB's unified pool, or each LRU map
    /// separately under use_lemma_db = false.
    size_t max_entries = 1u << 18;
    /// Backend selector: the activity-managed lemma database (default) or
    /// the legacy per-kernel LRU maps (the measured baseline).
    bool use_lemma_db = true;
  };

  ConstraintKernel() : ConstraintKernel(Options()) {}
  explicit ConstraintKernel(Options options)
      : ConstraintKernel(options, nullptr) {}
  /// Attaches an externally owned lemma database (shared across kernels;
  /// ignored under memoize = false). When `lemmas` is null and the options
  /// ask for the lemma backend, the kernel creates its own store sized by
  /// Options::max_entries.
  ConstraintKernel(Options options, std::shared_ptr<LemmaDatabase> lemmas)
      : options_(options),
        feasibility_cache_(options.max_entries),
        implication_cache_(options.max_entries) {
    if (options_.memoize && options_.use_lemma_db) {
      if (lemmas != nullptr) {
        lemma_db_ = std::move(lemmas);
      } else {
        LemmaDatabase::Options db_options;
        db_options.max_entries = options_.max_entries;
        lemma_db_ = std::make_shared<LemmaDatabase>(db_options);
      }
      lemma_baseline_ = lemma_db_->stats();
    }
  }

  ConstraintKernel(const ConstraintKernel&) = delete;
  ConstraintKernel& operator=(const ConstraintKernel&) = delete;

  // --- LP-level entry points (drop-in for lp/feasibility.h) ---

  /// Memoized CheckFeasibility: decision plus witness point.
  FeasibilityResult CheckFeasibility(
      size_t num_vars, const std::vector<LinearConstraint>& constraints);

  /// Memoized IsConsistentWithNegation: is `constraints AND NOT(c)`
  /// satisfiable? The per-branch systems of the negation are themselves
  /// routed through the feasibility cache.
  bool IsConsistentWithNegation(size_t num_vars,
                                const std::vector<LinearConstraint>& constraints,
                                const LinearConstraint& c);

  /// Boundedness passthrough: counted in the telemetry (one oracle call)
  /// but not cached — callers cache at a higher level.
  bool IsBoundedSystem(size_t num_vars,
                       const std::vector<LinearConstraint>& constraints);

  // --- Conjunction-level entry points (atoms already canonical) ---

  FeasibilityResult Feasibility(const Conjunction& conj);
  bool IsFeasible(const Conjunction& conj) {
    return Feasibility(conj).feasible;
  }

  /// Is `conj AND NOT(atom)` satisfiable?
  bool IsConsistentWithNegation(const Conjunction& conj,
                                const LinearAtom& atom);

  /// Exact semantic implication: every point of `conj` satisfies `atom`.
  bool ImpliesAtom(const Conjunction& conj, const LinearAtom& atom) {
    return !IsConsistentWithNegation(conj, atom);
  }

  const Options& options() const { return options_; }

  /// The backing lemma database, or null (LRU backend / memoize off). Its
  /// lifetime is independent of this kernel: hold the shared_ptr to keep
  /// lemmas alive across ScopedKernel scopes and kernel teardowns.
  const std::shared_ptr<LemmaDatabase>& lemma_db() const { return lemma_db_; }

  /// Inline-cache invalidation epoch (plan/vm.h): moves whenever cached
  /// verdict identity changes — ClearCache(), lemma invalidation, lemma-DB
  /// Clear(). The VM pins (kernel pointer, epoch) per inline-cache slot
  /// and drops the slot when either moves, so a cleared kernel can never
  /// serve a stale inline-cache hit.
  uint64_t CacheEpoch() const {
    const uint64_t own = clear_epoch_.load(std::memory_order_relaxed);
    return lemma_db_ != nullptr ? own + lemma_db_->epoch() : own;
  }

  /// Forwards to LemmaDatabase::BindDisjuncts (no-op under LRU/memoize
  /// off): indexes the representation's disjuncts so subsequent lemmas
  /// carry occurrence lists. The evaluator calls this once per Evaluate
  /// with the extension's database representation.
  void BindLemmaOccurrences(const DnfFormula& representation);

  /// Forwards to LemmaDatabase::InvalidateDisjunct (returns 0 under
  /// LRU/memoize off): drops exactly the lemmas whose occurrence lists
  /// mention `disjunct` and bumps the cache epoch.
  size_t InvalidateDisjunct(DisjunctId disjunct);

  KernelStats stats() const;
  void ResetStats();
  /// Drops all cached entries (stats are kept) and bumps the cache epoch.
  /// Under the lemma backend this clears the attached store — which may be
  /// shared with other kernels.
  void ClearCache();

 private:
  FeasibilityResult CachedFeasibility(const CanonicalSystem& canon);
  bool DecideConsistentWithNegation(const CanonicalSystem& canon,
                                    const LinearAtom& atom);

  const Options options_;
  mutable std::mutex mu_;
  KernelStats stats_;
  /// Stats snapshot of the (possibly pre-warmed, possibly shared) lemma DB
  /// at attach/ResetStats time: stats() reports the delta since then.
  LemmaDbStats lemma_baseline_;
  std::shared_ptr<LemmaDatabase> lemma_db_;
  std::atomic<uint64_t> clear_epoch_{0};
  internal::CanonicalLruCache<FeasibilityResult> feasibility_cache_;
  internal::CanonicalLruCache<bool> implication_cache_;
};

/// The process-wide default kernel (memoizing, default LRU bound).
ConstraintKernel& DefaultKernel();

/// The kernel all oracle consumers route through: the innermost
/// ScopedKernel override on the current thread, or the process default.
ConstraintKernel& CurrentKernel();

/// RAII override installing `kernel` as CurrentKernel() on this thread for
/// the scope's lifetime — how benchmarks and tests run a workload against a
/// fresh or cache-disabled kernel without plumbing a handle through every
/// layer.
class ScopedKernel {
 public:
  explicit ScopedKernel(ConstraintKernel& kernel);
  ~ScopedKernel();

  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  ConstraintKernel* previous_;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_KERNEL_H_
