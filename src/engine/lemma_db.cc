#include "engine/lemma_db.h"

#include <algorithm>
#include <utility>

namespace lcdb {

namespace {

/// Rescale threshold for the growing activity increment (the MiniSat-style
/// constant-time decay). Doubles keep ~15 significant digits; rescaling at
/// 1e100 leaves relative order exact.
constexpr double kActivityRescale = 1e100;

/// Worst-first eviction order: transients before frequents before cores,
/// coldest activity first, ties broken toward the oldest lemma. Strict
/// weak order over distinct ids, so eviction is deterministic.
struct EvictRank {
  LemmaDatabase::Tier tier;
  double activity;
  uint64_t id;
  bool operator<(const EvictRank& o) const {
    if (tier != o.tier) return static_cast<int>(tier) > static_cast<int>(o.tier);
    if (activity != o.activity) return activity < o.activity;
    return id < o.id;
  }
};

LemmaDatabase::Options Normalize(LemmaDatabase::Options o) {
  if (o.max_entries == 0) o.max_entries = 1;
  if (o.decay_interval == 0) o.decay_interval = 1;
  if (o.activity_decay <= 0.0 || o.activity_decay > 1.0) o.activity_decay = 1.0;
  return o;
}

}  // namespace

LemmaDatabase::LemmaDatabase(Options options) : options_(Normalize(options)) {}

LemmaDatabase::Entry* LemmaDatabase::FindLocked(uint64_t hash,
                                                const std::string& key) {
  auto bucket = index_.find(hash);
  if (bucket == index_.end()) return nullptr;
  bool collided = false;
  Entry* found = nullptr;
  for (uint64_t id : bucket->second) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    if (it->second.key == key) {
      found = &it->second;
    } else {
      collided = true;
    }
  }
  if (found == nullptr && collided) ++stats_.collisions;
  return found;
}

void LemmaDatabase::TouchLocked(Entry& entry) {
  entry.activity += activity_inc_;
  if (entry.activity > kActivityRescale) {
    // Rescale every activity and the increment together; relative order
    // (and hence eviction choice) is unchanged.
    for (auto& [id, e] : entries_) e.activity *= 1.0 / kActivityRescale;
    activity_inc_ *= 1.0 / kActivityRescale;
  }
  ++entry.uses;
  if (entry.tier == Tier::kTransient && entry.uses >= options_.frequent_uses) {
    entry.tier = Tier::kFrequent;
  }
}

std::vector<DisjunctId> LemmaDatabase::OccurrencesOfLocked(
    const std::vector<LinearAtom>& atoms) const {
  std::vector<DisjunctId> occ;
  if (!bound_) return occ;
  for (const LinearAtom& atom : atoms) {
    auto it = atom_index_.find(StableAtomHash(atom));
    if (it == atom_index_.end()) continue;
    occ.insert(occ.end(), it->second.begin(), it->second.end());
  }
  std::sort(occ.begin(), occ.end());
  occ.erase(std::unique(occ.begin(), occ.end()), occ.end());
  return occ;
}

void LemmaDatabase::InsertLocked(uint64_t hash, const std::string& key,
                                 LemmaValue value,
                                 const std::vector<LinearAtom>& atoms,
                                 uint64_t pivots, bool infeasible_core) {
  Entry entry;
  entry.id = next_id_++;
  entry.hash = hash;
  entry.key = key;
  entry.value = std::move(value);
  entry.activity = activity_inc_;
  entry.uses = 0;
  entry.tier = (infeasible_core || pivots >= options_.core_pivots)
                   ? Tier::kCore
                   : Tier::kTransient;
  entry.occurrences = OccurrencesOfLocked(atoms);
  for (DisjunctId d : entry.occurrences) {
    if (d < disjunct_lemmas_.size()) disjunct_lemmas_[d].push_back(entry.id);
  }
  index_[hash].push_back(entry.id);
  entries_.emplace(entry.id, std::move(entry));
  ++stats_.insertions;

  if (++inserts_since_decay_ >= options_.decay_interval) {
    inserts_since_decay_ = 0;
    // Growing the increment decays every existing activity relative to
    // future bumps — the constant-time form of multiplying all scores by
    // activity_decay.
    activity_inc_ *= 1.0 / options_.activity_decay;
    ++stats_.decays;
  }
  ReduceLocked();
}

void LemmaDatabase::EraseLocked(uint64_t id, Entry& entry,
                                uint64_t* tier_counter) {
  auto bucket = index_.find(entry.hash);
  if (bucket != index_.end()) {
    auto& chain = bucket->second;
    chain.erase(std::remove(chain.begin(), chain.end(), id), chain.end());
    if (chain.empty()) index_.erase(bucket);
  }
  // Occurrence buckets are pruned lazily (dead ids are skipped on
  // invalidation), so no per-disjunct scan here.
  if (tier_counter != nullptr) ++*tier_counter;
  entries_.erase(id);
}

void LemmaDatabase::ReduceLocked() {
  if (entries_.size() <= options_.max_entries) return;
  // Batch-evict down to 7/8 of capacity: amortizes the ranking scan over
  // the next capacity/8 insertions while keeping the bound tight for tiny
  // capacities (7/8 of 2 is still 1 below the trigger point).
  const size_t target =
      options_.max_entries - options_.max_entries / 8;
  std::vector<EvictRank> ranks;
  ranks.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    ranks.push_back(EvictRank{e.tier, e.activity, id});
  }
  std::sort(ranks.begin(), ranks.end());
  const size_t to_evict = entries_.size() - target;
  for (size_t i = 0; i < to_evict && i < ranks.size(); ++i) {
    auto it = entries_.find(ranks[i].id);
    if (it == entries_.end()) continue;
    uint64_t* counter = nullptr;
    switch (it->second.tier) {
      case Tier::kCore: counter = &stats_.evictions_core; break;
      case Tier::kFrequent: counter = &stats_.evictions_frequent; break;
      case Tier::kTransient: counter = &stats_.evictions_transient; break;
    }
    EraseLocked(ranks[i].id, it->second, counter);
  }
}

std::optional<FeasibilityResult> LemmaDatabase::LookupFeasibility(
    const CanonicalSystem& canon) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(canon.hash, canon.encoding);
  if (entry == nullptr || entry->value.is_implication) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  TouchLocked(*entry);
  return entry->value.feasibility;
}

void LemmaDatabase::InsertFeasibility(const CanonicalSystem& canon,
                                      const FeasibilityResult& result,
                                      uint64_t pivots) {
  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(canon.hash, canon.encoding) != nullptr) return;
  LemmaValue value;
  value.is_implication = false;
  value.feasibility = result;
  // An infeasible verdict is the system's own infeasible core — the
  // highest-value lemma kind (it prunes whole disjuncts), pinned core.
  InsertLocked(canon.hash, canon.encoding, std::move(value), canon.atoms,
               pivots, /*infeasible_core=*/!result.feasible);
}

std::optional<bool> LemmaDatabase::LookupImplication(uint64_t hash,
                                                     const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(hash, key);
  if (entry == nullptr || !entry->value.is_implication) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  TouchLocked(*entry);
  return entry->value.implication;
}

void LemmaDatabase::InsertImplication(uint64_t hash, const std::string& key,
                                      const std::vector<LinearAtom>& lhs_atoms,
                                      bool consistent, uint64_t pivots) {
  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(hash, key) != nullptr) return;
  LemmaValue value;
  value.is_implication = true;
  value.implication = consistent;
  // A proved implication (`consistent == false`) prunes redundancy tests
  // the same way an infeasible core prunes feasibility: pin it core.
  InsertLocked(hash, key, std::move(value), lhs_atoms, pivots,
               /*infeasible_core=*/!consistent);
}

void LemmaDatabase::BindDisjuncts(const DnfFormula& representation) {
  // Fingerprint outside the lock: canonicalization is pure.
  std::string fingerprint_bytes;
  for (const Conjunction& c : representation.disjuncts()) {
    fingerprint_bytes += CanonicalizeConjunction(c).encoding;
    fingerprint_bytes += ';';
  }
  const uint64_t fingerprint = StableHash64(fingerprint_bytes);

  std::lock_guard<std::mutex> lock(mu_);
  if (bound_ && fingerprint == bound_fingerprint_) return;
  ++stats_.rebinds;
  bound_ = true;
  bound_fingerprint_ = fingerprint;
  atom_index_.clear();
  disjunct_lemmas_.assign(representation.disjuncts().size(), {});
  for (DisjunctId d = 0; d < representation.disjuncts().size(); ++d) {
    for (const LinearAtom& atom : representation.disjuncts()[d].atoms()) {
      atom_index_[StableAtomHash(atom)].push_back(d);
    }
  }
  // Existing lemmas referenced the previous representation's disjunct ids;
  // those lists are now meaningless. The lemmas themselves stay valid
  // (pure truths) but become unattributed.
  for (auto& [id, e] : entries_) e.occurrences.clear();
}

size_t LemmaDatabase::InvalidateDisjunct(DisjunctId disjunct) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  if (disjunct < disjunct_lemmas_.size()) {
    std::vector<uint64_t> ids;
    ids.swap(disjunct_lemmas_[disjunct]);
    for (uint64_t id : ids) {
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;  // evicted since; lazily pruned
      EraseLocked(id, it->second, nullptr);
      ++dropped;
    }
  }
  stats_.invalidations += dropped;
  // The epoch moves even on an empty drop: callers use it as the "the
  // database changed under you" signal for inline caches, independent of
  // whether any lemma happened to mention the disjunct.
  BumpEpoch();
  return dropped;
}

size_t LemmaDatabase::OccurrenceCount(DisjunctId disjunct) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (disjunct >= disjunct_lemmas_.size()) return 0;
  size_t live = 0;
  for (uint64_t id : disjunct_lemmas_[disjunct]) {
    if (entries_.count(id) != 0) ++live;
  }
  return live;
}

void LemmaDatabase::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  index_.clear();
  for (auto& bucket : disjunct_lemmas_) bucket.clear();
  BumpEpoch();
}

size_t LemmaDatabase::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::array<size_t, 3> LemmaDatabase::TierCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<size_t, 3> counts{0, 0, 0};
  for (const auto& [id, e] : entries_) {
    ++counts[static_cast<size_t>(e.tier)];
  }
  return counts;
}

LemmaDbStats LemmaDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lcdb
