#ifndef LCDB_ENGINE_GOVERNOR_H_
#define LCDB_ENGINE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

/// Per-query resource budgets. kUnlimited disables a budget; an explicit 0
/// is a real budget that trips on the first unit consumed (the zero-budget
/// edge case governor_test.cc pins down). `wall_clock_ms` becomes an
/// absolute steady-clock deadline when the governor is constructed.
struct GovernorLimits {
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  uint64_t wall_clock_ms = kUnlimited;           ///< per-query deadline
  uint64_t max_feasibility_queries = kUnlimited; ///< kernel decisions asked
  uint64_t max_simplex_pivots = kUnlimited;      ///< tableau pivot steps
  uint64_t max_fixpoint_iterations = kUnlimited; ///< Kleene stages, all ops
  uint64_t max_tuple_space = kUnlimited;         ///< n^k per fixpoint/TC op
  uint64_t max_dnf_disjuncts = kUnlimited;       ///< widest formula allowed
  uint64_t max_bigint_bits = kUnlimited;         ///< widest QE coefficient
};

/// Counters of governance work, surfaced through Evaluator::Stats, `lcdbq
/// --stats` and the bench JSON so the cancellation-check overhead is a
/// measured quantity rather than folklore.
struct GovernorStats {
  uint64_t checkpoints = 0;      ///< cooperative cancellation points passed
  uint64_t deadline_checks = 0;  ///< steady_clock reads among those
  uint64_t budget_trips = 0;     ///< trips raised (1 per failed query)
  /// Which budget tripped ("max_feasibility_queries", "wall_clock_ms",
  /// "cancel", ...); empty while the query is within budget.
  std::string tripped_budget;

  std::string ToString() const {
    std::string out = "checkpoints=" + std::to_string(checkpoints);
    out += " deadline_checks=" + std::to_string(deadline_checks);
    out += " budget_trips=" + std::to_string(budget_trips);
    if (!tripped_budget.empty()) out += " tripped=" + tripped_budget;
    return out;
  }
};

/// The resource governor of one query: carries the budgets, the consumption
/// counters and an externally settable cancel flag. Long-running loops call
/// the On*/Check* entry points; when a budget is exceeded the governor
/// records which one and throws a QueryInterrupt, which unwinds to the
/// nearest recovery boundary (Evaluator::Evaluate converts it to a Status
/// naming the budget). The governor itself is left fully usable for
/// inspection after a trip — `stats().tripped_budget` names the culprit.
///
/// Install with ScopedGovernor, mirroring ScopedKernel: consumers reach the
/// innermost override on the current thread via CurrentGovernorOrNull(),
/// and a thread with no governor installed pays one thread-local load per
/// checkpoint and nothing else.
///
/// Thread safety: RequestCancel() may be called from any thread; the
/// consumption counters are relaxed atomics so a future parallel executor
/// can share one governor across worker threads.
class QueryGovernor {
 public:
  QueryGovernor() : QueryGovernor(GovernorLimits{}) {}
  explicit QueryGovernor(const GovernorLimits& limits);

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// Cooperative cancellation from outside the evaluating thread: the next
  /// checkpoint throws kCancelled.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// The plain cancellation point: cancel flag on every call, deadline
  /// every kDeadlineStride-th call (a steady_clock read is ~20ns; the
  /// stride keeps governed evaluation within the <2% overhead target).
  void Checkpoint();

  // --- Budget consumption entry points ---

  /// One kernel feasibility/implication decision (engine/kernel.cc).
  void OnFeasibilityQuery();
  /// One tableau pivot (lp/simplex.cc); also serves as the cancellation
  /// point inside a single long LP solve.
  void OnSimplexPivot();
  /// One Kleene stage of any fixed-point operator.
  void OnFixpointIteration();
  /// `space` = n^k tuple-space size of a fixpoint/TC operator; `op` names
  /// the operator for the diagnostic.
  void CheckTupleSpace(uint64_t space, const char* op);
  /// Width of a freshly produced DNF formula (QE, region expansion).
  void CheckDnfDisjuncts(uint64_t disjuncts);
  /// Bit length of the widest coefficient a QE combination produced.
  void CheckBigIntBits(uint64_t bits);

  GovernorStats stats() const;
  const GovernorLimits& limits() const { return limits_; }

 private:
  static constexpr uint64_t kDeadlineStride = 64;

  void CheckDeadline();
  [[noreturn]] void Trip(StatusCode code, const char* budget,
                         std::string detail);

  const GovernorLimits limits_;
  const bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_;

  std::atomic<bool> cancel_{false};
  std::atomic<uint64_t> feasibility_queries_{0};
  std::atomic<uint64_t> simplex_pivots_{0};
  std::atomic<uint64_t> fixpoint_iterations_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> deadline_checks_{0};
  std::atomic<uint64_t> budget_trips_{0};
  mutable std::atomic<bool> tripped_{false};
  std::string tripped_budget_;  ///< written once, on the tripping thread
};

/// The innermost ScopedGovernor on this thread, or nullptr when the query
/// runs ungoverned (the default: zero bookkeeping).
QueryGovernor* CurrentGovernorOrNull();

/// RAII install, mirroring ScopedKernel.
class ScopedGovernor {
 public:
  explicit ScopedGovernor(QueryGovernor& governor);
  ~ScopedGovernor();

  ScopedGovernor(const ScopedGovernor&) = delete;
  ScopedGovernor& operator=(const ScopedGovernor&) = delete;

 private:
  QueryGovernor* previous_;
};

// --- One-line call sites for governed layers (no-ops when ungoverned) ---

inline void GovernorCheckpoint() {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->Checkpoint();
}
inline void GovernorOnFeasibilityQuery() {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->OnFeasibilityQuery();
}
inline void GovernorOnSimplexPivot() {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->OnSimplexPivot();
}
inline void GovernorOnFixpointIteration() {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->OnFixpointIteration();
}
inline void GovernorCheckTupleSpace(uint64_t space, const char* op) {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->CheckTupleSpace(space, op);
}
inline void GovernorCheckDnfDisjuncts(uint64_t disjuncts) {
  if (QueryGovernor* g = CurrentGovernorOrNull()) {
    g->CheckDnfDisjuncts(disjuncts);
  }
}
/// Returns true iff a governor with a max_bigint_bits budget is installed,
/// so hot loops can skip the coefficient scan entirely otherwise.
inline bool GovernorWantsBigIntBits() {
  QueryGovernor* g = CurrentGovernorOrNull();
  return g != nullptr &&
         g->limits().max_bigint_bits != GovernorLimits::kUnlimited;
}
inline void GovernorCheckBigIntBits(uint64_t bits) {
  if (QueryGovernor* g = CurrentGovernorOrNull()) g->CheckBigIntBits(bits);
}

}  // namespace lcdb

#endif  // LCDB_ENGINE_GOVERNOR_H_
