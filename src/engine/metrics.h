#ifndef LCDB_ENGINE_METRICS_H_
#define LCDB_ENGINE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/analysis_stats.h"
#include "analysis/verify_stats.h"
#include "engine/governor.h"
#include "engine/kernel_stats.h"
#include "plan/plan_stats.h"

namespace lcdb {

/// A point-in-time reading of a MetricsRegistry: flat name → value maps,
/// diffable and serializable. Counter and gauge values share one numeric
/// namespace; histograms carry their log2 buckets plus count/sum. Labels
/// hold the few string-valued facts (e.g. governor.tripped_budget).
struct MetricsSnapshot {
  struct HistogramValue {
    /// bucket[i] counts observations with value < 2^i; the last bucket is
    /// the overflow (kHistogramBuckets-1 doubles as +inf).
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Estimated q-quantile (q in (0, 1]) from the log2 buckets: the
    /// target rank's bucket is found by cumulative count and the value is
    /// interpolated linearly inside the bucket's range [2^(i-1), 2^i) —
    /// so the estimate carries at most one bucket (2x) of error. The
    /// overflow bucket extrapolates to twice its lower bound; an empty
    /// histogram reports 0.
    uint64_t Percentile(double q) const;
  };

  std::map<std::string, uint64_t> values;  ///< counters and gauges
  std::map<std::string, std::string> labels;
  std::map<std::string, HistogramValue> histograms;

  /// Counter-wise difference `*this - before`. Gauges diff like counters
  /// (callers snapshot around one query, where the delta is the story);
  /// labels keep the later value; histogram buckets/count/sum subtract.
  MetricsSnapshot Diff(const MetricsSnapshot& before) const;

  /// Field-wise union with `other`: numeric values add, labels take
  /// `other`'s value on collision, histogram buckets/count/sum add. How
  /// QuerySession::Metrics folds the session.* family over the wrapped
  /// evaluator's families into one flat namespace.
  MetricsSnapshot& Merge(const MetricsSnapshot& other);

  /// Flat single-line JSON object: numeric fields under their dotted
  /// names, labels as strings, histograms as {"count":n,"sum":n,
  /// "buckets":[...],"p50":n,"p90":n,"p99":n} objects (percentiles are
  /// the interpolated estimates of Percentile). The schema the CI job
  /// validates.
  std::string ToJson() const;

  /// `name=value` lines for terminals (lcdbq --stats). Histograms render
  /// count, sum and the p50/p90/p99 estimates instead of raw buckets.
  std::string ToString() const;
};

/// A unified, named registry over the engine's telemetry islands. The
/// typed structs (KernelStats, GovernorStats, PlanPassStats, OpTimings,
/// Evaluator::Stats' own counters) remain the zero-cost recording surface
/// on the hot paths; this registry is the *naming* layer every exporter
/// shares — `lcdbq --stats`, the bench harness and EXPLAIN ANALYZE all
/// read the same `kernel.*` / `governor.*` / `evaluator.*` / `plan.*` /
/// `op.*` families instead of hand-merging three structs each.
class MetricsRegistry {
 public:
  static constexpr size_t kHistogramBuckets = 40;

  /// Adds `delta` to the named counter (creating it at zero).
  void Count(const std::string& name, uint64_t delta);
  /// Sets the named gauge to `value`.
  void Gauge(const std::string& name, uint64_t value);
  /// Sets the named string label.
  void Label(const std::string& name, std::string value);
  /// Records one observation into the named histogram (log2 buckets).
  void Observe(const std::string& name, uint64_t value);

  MetricsSnapshot Snapshot() const;
  void Clear();

  // --- Adapters from the existing telemetry structs. Each registers one
  // family: kernel.*, governor.*, plan.*, op.<name>.{count,total_ns}. ---
  void RegisterKernelStats(const KernelStats& stats);
  void RegisterGovernorStats(const GovernorStats& stats);
  void RegisterPlanPassStats(const PlanPassStats& stats);
  void RegisterAnalysisStats(const AnalysisStats& stats);
  void RegisterVerifyStats(const VerifyStats& stats);
  void RegisterOpTimings(const OpTimings& timings);
  void RegisterVmStats(const VmStats& stats);
  void RegisterPlanCostStats(const PlanCostStats& stats);

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, uint64_t> gauges_;
  std::map<std::string, std::string> labels_;
  std::map<std::string, MetricsSnapshot::HistogramValue> histograms_;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_METRICS_H_
