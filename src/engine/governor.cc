#include "engine/governor.h"

#include <utility>

namespace lcdb {

namespace {
thread_local QueryGovernor* t_current_governor = nullptr;
}  // namespace

QueryGovernor* CurrentGovernorOrNull() { return t_current_governor; }

ScopedGovernor::ScopedGovernor(QueryGovernor& governor)
    : previous_(t_current_governor) {
  t_current_governor = &governor;
}

ScopedGovernor::~ScopedGovernor() { t_current_governor = previous_; }

QueryGovernor::QueryGovernor(const GovernorLimits& limits)
    : limits_(limits),
      has_deadline_(limits.wall_clock_ms != GovernorLimits::kUnlimited),
      deadline_(has_deadline_
                    ? std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(limits.wall_clock_ms)
                    : std::chrono::steady_clock::time_point::max()) {}

void QueryGovernor::Trip(StatusCode code, const char* budget,
                         std::string detail) {
  budget_trips_.fetch_add(1, std::memory_order_relaxed);
  bool expected = false;
  if (tripped_.compare_exchange_strong(expected, true,
                                       std::memory_order_relaxed)) {
    // First trip names the culprit; repeats (a retried query on the same
    // spent governor) keep the original attribution.
    tripped_budget_ = budget;
  }
  throw QueryInterrupt(Status(code, std::move(detail)));
}

void QueryGovernor::CheckDeadline() {
  deadline_checks_.fetch_add(1, std::memory_order_relaxed);
  if (std::chrono::steady_clock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded, "wall_clock_ms",
         "query exceeded its wall-clock budget of " +
             std::to_string(limits_.wall_clock_ms) + "ms");
  }
}

void QueryGovernor::Checkpoint() {
  const uint64_t n = checkpoints_.fetch_add(1, std::memory_order_relaxed);
  if (cancel_.load(std::memory_order_relaxed)) {
    Trip(StatusCode::kCancelled, "cancel", "query cancelled by caller");
  }
  if (has_deadline_ && n % kDeadlineStride == 0) CheckDeadline();
}

void QueryGovernor::OnFeasibilityQuery() {
  const uint64_t used =
      feasibility_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (used > limits_.max_feasibility_queries) {
    Trip(StatusCode::kResourceExhausted, "max_feasibility_queries",
         "query exceeded its kernel feasibility-query budget of " +
             std::to_string(limits_.max_feasibility_queries));
  }
  Checkpoint();
}

void QueryGovernor::OnSimplexPivot() {
  const uint64_t used =
      simplex_pivots_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (used > limits_.max_simplex_pivots) {
    Trip(StatusCode::kResourceExhausted, "max_simplex_pivots",
         "query exceeded its simplex pivot budget of " +
             std::to_string(limits_.max_simplex_pivots));
  }
  Checkpoint();
}

void QueryGovernor::OnFixpointIteration() {
  const uint64_t used =
      fixpoint_iterations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (used > limits_.max_fixpoint_iterations) {
    Trip(StatusCode::kResourceExhausted, "max_fixpoint_iterations",
         "query exceeded its fixpoint-iteration budget of " +
             std::to_string(limits_.max_fixpoint_iterations));
  }
  Checkpoint();
}

void QueryGovernor::CheckTupleSpace(uint64_t space, const char* op) {
  if (space > limits_.max_tuple_space) {
    Trip(StatusCode::kResourceExhausted, "max_tuple_space",
         std::string(op) + " tuple space " + std::to_string(space) +
             " exceeds the governor budget of " +
             std::to_string(limits_.max_tuple_space));
  }
}

void QueryGovernor::CheckDnfDisjuncts(uint64_t disjuncts) {
  if (disjuncts > limits_.max_dnf_disjuncts) {
    Trip(StatusCode::kResourceExhausted, "max_dnf_disjuncts",
         "intermediate formula grew to " + std::to_string(disjuncts) +
             " disjuncts, over the budget of " +
             std::to_string(limits_.max_dnf_disjuncts));
  }
}

void QueryGovernor::CheckBigIntBits(uint64_t bits) {
  if (bits > limits_.max_bigint_bits) {
    Trip(StatusCode::kResourceExhausted, "max_bigint_bits",
         "a coefficient grew to " + std::to_string(bits) +
             " bits, over the budget of " +
             std::to_string(limits_.max_bigint_bits));
  }
}

GovernorStats QueryGovernor::stats() const {
  GovernorStats out;
  out.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  out.deadline_checks = deadline_checks_.load(std::memory_order_relaxed);
  out.budget_trips = budget_trips_.load(std::memory_order_relaxed);
  if (tripped_.load(std::memory_order_relaxed)) {
    out.tripped_budget = tripped_budget_;
  }
  return out;
}

}  // namespace lcdb
