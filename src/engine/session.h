#ifndef LCDB_ENGINE_SESSION_H_
#define LCDB_ENGINE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "db/region_extension.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/metrics.h"
#include "engine/obslog.h"
#include "engine/profiler.h"
#include "engine/trace.h"
#include "util/status.h"

namespace lcdb {

// The failure taxonomy (FailureClass / ClassifyFailure / FailureClassName)
// lives in engine/obslog.h now — the flight recorder names outcomes with
// it below the evaluator layer — and is re-exported here unchanged.

/// One rung dropped by the degradation ladder, for the log the tests pin.
struct DegradationStep {
  std::string rung;    ///< "vm->tree", "lemma->lru", "memoize->off", ...
  size_t attempt = 0;  ///< attempt index (0-based) whose failure dropped it
};

struct SessionOptions {
  /// First-rung evaluator configuration. capture_resume is forced on when
  /// `use_resume` is set.
  Evaluator::Options eval;
  /// First-rung kernel configuration (one fresh kernel per attempt).
  ConstraintKernel::Options kernel;
  /// Optional lemma store shared across attempts and across queries; when
  /// null each attempt's kernel creates its own.
  std::shared_ptr<LemmaDatabase> lemmas;
  /// Base per-attempt budgets. A governor is installed only when at least
  /// one budget is finite, so unbudgeted sessions stay zero-overhead.
  GovernorLimits limits;
  /// Record a span trace per attempt (the ladder's last rung turns it off).
  bool trace = false;
  /// Attempts allowed beyond the first.
  size_t max_retries = 3;
  /// Consume resume tokens on resource retries (core/resume.h), so a retry
  /// continues from the interrupted Kleene stage instead of restarting.
  bool use_resume = true;
  /// Finite budgets multiply by this on every resource retry (clamped at
  /// kUnlimited on overflow). 0 and 1 both mean "retry on the same budget".
  uint64_t budget_escalation = 2;
  /// Evaluations of the same query text that must fail deterministically
  /// (ladder and retries exhausted) before the text is quarantined and
  /// subsequent evaluations are rejected without running.
  size_t quarantine_threshold = 3;
  /// Continuous-profiling policy (engine/profiler.h): sample_every == 0
  /// (the default here) disables it; N > 0 auto-installs a tracer for every
  /// Nth query and folds its spans into the profile.op.* histograms. The
  /// sampled tracer is independent of `trace` above, which traces every
  /// attempt.
  ContinuousProfiler::Options profile{.sample_every = 0};
  /// When non-empty, every Evaluate call that ends in a non-OK Status
  /// serializes a post-mortem bundle (engine/obslog.h) into this directory.
  std::string postmortem_dir;
};

/// Cumulative counters of one session, exported as the session.* metrics
/// family (QuerySession::Metrics).
struct SessionStats {
  uint64_t queries = 0;      ///< Evaluate/EvaluateSentence calls
  uint64_t successes = 0;
  uint64_t failures = 0;     ///< calls that exhausted the ladder
  uint64_t invalid = 0;      ///< calls rejected as kInvalid (no retries)
  uint64_t attempts = 0;     ///< evaluator runs, including retries
  uint64_t retries = 0;
  uint64_t resumes = 0;      ///< retries that continued from a checkpoint
  uint64_t degradations = 0;
  uint64_t budget_escalations = 0;
  uint64_t quarantined = 0;  ///< texts currently on the quarantine list
  uint64_t quarantine_rejections = 0;

  std::string ToString() const;
};

/// A resilient evaluation session: wraps the Evaluator with a failure
/// taxonomy, a deterministic degradation ladder, bounded retries with
/// budget escalation and checkpoint/resume, and a quarantine list.
///
/// Each Evaluate call runs a retry loop of at most 1 + max_retries
/// attempts, every attempt under a fresh kernel and (when budgeted) a fresh
/// governor:
///
///  * kResource failures escalate every finite budget by
///    `budget_escalation` and retry, continuing from the checkpoint the
///    failure Status carried (byte-identical final answers — see
///    core/resume.h). A *second* consecutive resource failure at the same
///    rung also drops a rung: the backend itself may be the problem.
///  * kFault failures (internal/unsupported) drop one ladder rung and
///    retry. The rung order is fixed: bytecode VM -> plan-tree walk, lemma
///    database -> plain LRU, kernel memoization -> off, tracing -> off.
///    Checkpoints survive the vm->tree drop by design.
///  * kInvalid and kCancelled never retry.
///
/// A call that exhausts the ladder counts one deterministic failure
/// against its query text; at `quarantine_threshold` the text is
/// quarantined and later calls are rejected (kResourceExhausted) without
/// consuming any budget, until ClearQuarantine().
///
/// The session is single-threaded, like the Evaluator it wraps.
class QuerySession {
 public:
  explicit QuerySession(const RegionExtension& extension,
                        SessionOptions options = {});

  /// Parses, type-checks and evaluates `query_text` through the retry
  /// ladder. The returned Status of a failed call is the *last* attempt's.
  Result<QueryAnswer> Evaluate(std::string_view query_text);

  /// Sentence variant: the answer must have no free element variables;
  /// returns its truth value.
  Result<bool> EvaluateSentence(std::string_view query_text);

  const SessionStats& stats() const { return stats_; }

  /// Every rung dropped over the session's lifetime, in drop order — the
  /// ladder-order contract session_test.cc pins.
  const std::vector<DegradationStep>& degradation_log() const {
    return degradation_log_;
  }

  bool IsQuarantined(std::string_view query_text) const;
  void ClearQuarantine();

  /// Replaces the base budgets for subsequent calls (lcdbsh `\set`).
  void set_limits(const GovernorLimits& limits) { options_.limits = limits; }
  const SessionOptions& options() const { return options_; }

  /// The session.* counter family merged over the most recent call's
  /// evaluator metrics (evaluator.*, kernel.*, governor.*, plan.*, op.*) —
  /// the one flat namespace `lcdbq --stats` prints.
  MetricsSnapshot Metrics() const;

  /// The span trace of the most recent attempt, when SessionOptions::trace
  /// was on (or the profiler sampled the call) and the trace->off rung has
  /// not been dropped for that call.
  const QueryTracer* tracer() const { return tracer_.get(); }

  /// The continuous profiler, when SessionOptions::profile.sample_every is
  /// nonzero (lcdbsh `\show profile`); nullptr otherwise.
  const ContinuousProfiler* profiler() const { return profiler_.get(); }

  /// Post-mortem bundles written so far / the most recent bundle's path
  /// ("" until the first failure under a configured postmortem_dir).
  uint64_t postmortems_written() const {
    return postmortem_ ? postmortem_->written() : 0;
  }
  const std::string& last_postmortem_path() const {
    static const std::string kEmpty;
    return postmortem_ ? postmortem_->last_path() : kEmpty;
  }

 private:
  /// Mutable per-call ladder state: the remaining rungs plus the attempt
  /// configuration they degrade.
  struct LadderState {
    std::vector<std::string> rungs;  ///< pending drops, in drop order
    ConstraintKernel::Options kernel;
    GovernorLimits limits;
    bool trace = false;
    size_t resource_failures_at_rung = 0;
  };

  /// `force_trace` ORs the profiler's sampling decision into the starting
  /// rung, so a sampled call records spans even when options_.trace is off.
  LadderState InitialLadder(bool force_trace) const;
  /// Drops the next rung, applying it to `ladder` and (for "vm->tree") to
  /// `evaluator`. Returns false when no rung is left.
  bool Degrade(LadderState& ladder, Evaluator& evaluator, size_t attempt);
  void EscalateBudgets(LadderState& ladder);
  /// The retry loop around one parsed query. `key` is the quarantine key
  /// (the source text).
  Result<QueryAnswer> RunLadder(const FormulaNode& query,
                                const std::string& key,
                                std::string_view source, bool force_trace);
  /// Bookkeeping for a call that exhausted the ladder.
  void RecordDeterministicFailure(const std::string& key);
  /// Serializes one post-mortem bundle for a failed call, when
  /// options_.postmortem_dir is configured. Write errors are swallowed
  /// (diagnostics must never turn a query failure into a crash), but
  /// counted nowhere — the chaos CI asserts bundles exist instead.
  void WritePostmortem(std::string_view query_text, const Status& status,
                       uint64_t attempts, uint64_t retries,
                       uint64_t resumes, size_t ladder_log_before,
                       bool attempted);

  const RegionExtension& ext_;
  SessionOptions options_;
  SessionStats stats_;
  std::vector<DegradationStep> degradation_log_;
  std::map<std::string, size_t> failure_streaks_;
  std::set<std::string, std::less<>> quarantine_;
  std::unique_ptr<QueryTracer> tracer_;
  /// Metrics of the most recent call's evaluator, kept past its lifetime.
  MetricsSnapshot last_eval_metrics_;
  std::string last_failure_class_;
  std::unique_ptr<ContinuousProfiler> profiler_;  ///< when sampling is on
  std::unique_ptr<PostmortemWriter> postmortem_;  ///< when a dir is set
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_SESSION_H_
