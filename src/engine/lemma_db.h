#ifndef LCDB_ENGINE_LEMMA_DB_H_
#define LCDB_ENGINE_LEMMA_DB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraint/canonical.h"
#include "constraint/dnf_formula.h"
#include "lp/feasibility.h"

namespace lcdb {

/// Per-database-disjunct index into the lemma store (see LemmaDatabase).
/// The index is positional: disjunct `i` of the bound representation's
/// `disjuncts()` vector.
using DisjunctId = uint32_t;

/// Counters of one lemma database. Cumulative since construction; the
/// kernel folds the since-ResetStats delta into KernelStats, which is how
/// the `kernel.lemma.*` metrics family and the evaluator's per-query
/// attribution are fed.
struct LemmaDbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  /// Evictions split by the tier of the dropped lemma — the
  /// eviction-quality signal (dropping core lemmas is bad, dropping
  /// transients is the design working as intended).
  uint64_t evictions_core = 0;
  uint64_t evictions_frequent = 0;
  uint64_t evictions_transient = 0;
  /// Lemmas dropped by InvalidateDisjunct through the occurrence lists.
  uint64_t invalidations = 0;
  /// Activity-decay steps applied (every Options::decay_interval inserts).
  uint64_t decays = 0;
  /// Same-hash-different-encoding lookups, resolved exactly.
  uint64_t collisions = 0;
  /// Occurrence-index rebuilds (a bind to a different representation).
  uint64_t rebinds = 0;

  uint64_t evictions_total() const {
    return evictions_core + evictions_frequent + evictions_transient;
  }

  LemmaDbStats operator-(const LemmaDbStats& o) const {
    LemmaDbStats d = *this;
    d.hits -= o.hits;
    d.misses -= o.misses;
    d.insertions -= o.insertions;
    d.evictions_core -= o.evictions_core;
    d.evictions_frequent -= o.evictions_frequent;
    d.evictions_transient -= o.evictions_transient;
    d.invalidations -= o.invalidations;
    d.decays -= o.decays;
    d.collisions -= o.collisions;
    d.rebinds -= o.rebinds;
    return d;
  }
};

/// Cross-query, activity-managed store of kernel lemmas — the CDCL-style
/// replacement for the kernel's per-instance LRU caches (in the style of
/// QBF/SAT learnt-constraint databases: score by activity with periodic
/// decay, bump on use, evict by quality tier, keep occurrence lists for
/// targeted invalidation).
///
/// A lemma is a proved fact about a canonical constraint system, keyed by
/// its canonical byte encoding (constraint/canonical.h):
///
///  * a feasibility verdict — decision plus rational witness; an
///    *infeasible* verdict doubles as the system's infeasible core and is
///    pinned in the top quality tier;
///  * a proved implication — whether `system AND NOT(atom)` is
///    satisfiable, keyed by `encoding(system) + '!' + encoding(atom)`
///    (feasibility encodings never contain '!', so the keyspaces are
///    disjoint inside one store).
///
/// Lemma truth is a pure function of the canonical encoding, so entries
/// never go stale: eviction and invalidation affect hit rates only, never
/// answers. That is what makes the store safely shareable across queries,
/// across ScopedKernel scopes, and across kernels (a kernel holds a
/// shared_ptr; see ConstraintKernel).
///
/// Replacement protocol (vs the old LRU):
///  * every hit bumps the lemma's activity by a geometrically growing
///    increment — the classic constant-time equivalent of multiplying
///    every other lemma's score by `activity_decay` each period;
///  * lemmas are tiered: kCore (infeasible cores and verdicts whose oracle
///    solve cost >= core_pivots pivots), kFrequent (promoted after
///    frequent_uses hits), kTransient (the rest);
///  * when occupancy exceeds `max_entries`, the worst (tier, activity)
///    entries are batch-evicted down to 7/8 of capacity — transients
///    before frequents before cores, coldest first, ties to the oldest.
///    Recency plays no role.
///
/// Occurrence lists: BindDisjuncts() indexes the canonical atoms of a
/// database representation's disjuncts; every inserted lemma records which
/// disjuncts share at least one atom with it. InvalidateDisjunct(i) drops
/// exactly the live lemmas whose occurrence lists mention disjunct `i` —
/// the hook incremental re-evaluation needs when one disjunct of the
/// database changes. Invalidation and Clear() bump the epoch, which the
/// VM's inline caches compare through ConstraintKernel::CacheEpoch().
///
/// Thread safety: all state is guarded by an internal mutex; the epoch is
/// additionally readable lock-free (relaxed atomic) for the VM fast path.
class LemmaDatabase {
 public:
  enum class Tier : uint8_t { kCore = 0, kFrequent = 1, kTransient = 2 };

  struct Options {
    /// Occupancy bound over the unified store (feasibility + implication
    /// lemmas share one pool; the LRU predecessor bounded two separate
    /// maps — a sanctioned accounting delta, see DESIGN.md).
    size_t max_entries = 1u << 18;
    /// Multiplicative decay applied to all activities each period
    /// (implemented as growth of the bump increment).
    double activity_decay = 0.95;
    /// Insertions per decay step.
    size_t decay_interval = 64;
    /// Hits before a transient lemma is promoted to kFrequent.
    uint32_t frequent_uses = 3;
    /// Oracle pivot cost at or above which a lemma enters kCore directly.
    uint64_t core_pivots = 32;
  };

  LemmaDatabase() : LemmaDatabase(Options()) {}
  explicit LemmaDatabase(Options options);

  LemmaDatabase(const LemmaDatabase&) = delete;
  LemmaDatabase& operator=(const LemmaDatabase&) = delete;

  // --- Lemma lookup / insertion (called by the kernel under memoize) ---

  /// Feasibility lemma for `canon`, bumping its activity, or nullopt.
  std::optional<FeasibilityResult> LookupFeasibility(
      const CanonicalSystem& canon);

  /// Records a proved feasibility verdict. `pivots` is the oracle cost of
  /// the proof (tier assignment); infeasible verdicts are core regardless.
  void InsertFeasibility(const CanonicalSystem& canon,
                         const FeasibilityResult& result, uint64_t pivots);

  /// Implication lemma under the composite key (see class comment).
  std::optional<bool> LookupImplication(uint64_t hash, const std::string& key);

  /// Records a proved implication; `lhs_atoms` (the canonical system on
  /// the left of the implication) drive the occurrence list.
  void InsertImplication(uint64_t hash, const std::string& key,
                         const std::vector<LinearAtom>& lhs_atoms,
                         bool consistent, uint64_t pivots);

  // --- Occurrence lists / invalidation ---

  /// Binds the store to a database representation: indexes each disjunct's
  /// canonical atoms so later insertions can record occurrence lists.
  /// Binding the same representation again is a cheap no-op; binding a
  /// different one rebuilds the index and clears the now-meaningless old
  /// occurrence lists (the lemmas themselves stay — they are pure truths).
  void BindDisjuncts(const DnfFormula& representation);

  /// Drops every live lemma whose occurrence list mentions `disjunct`,
  /// bumps the epoch, and returns the number dropped.
  size_t InvalidateDisjunct(DisjunctId disjunct);

  /// Live lemmas currently mentioning `disjunct` (what InvalidateDisjunct
  /// would drop).
  size_t OccurrenceCount(DisjunctId disjunct) const;

  // --- Introspection ---

  void Clear();  ///< Drops all lemmas and bumps the epoch (stats kept).
  size_t size() const;
  size_t capacity() const { return options_.max_entries; }
  /// Live-entry counts indexed by Tier (core, frequent, transient).
  std::array<size_t, 3> TierCounts() const;
  LemmaDbStats stats() const;

  /// Invalidation epoch: bumped by Clear() and InvalidateDisjunct(). The
  /// VM's inline caches pin the epoch they were filled under and drop
  /// slots when it moves (ConstraintKernel::CacheEpoch).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  struct LemmaValue {
    bool is_implication = false;
    bool implication = false;        // valid when is_implication
    FeasibilityResult feasibility;   // valid when !is_implication
  };
  struct Entry {
    uint64_t id = 0;  ///< insertion sequence number, stable for its life
    uint64_t hash = 0;
    std::string key;
    LemmaValue value;
    double activity = 0.0;
    uint32_t uses = 0;
    Tier tier = Tier::kTransient;
    std::vector<DisjunctId> occurrences;  ///< sorted disjunct ids
  };

  Entry* FindLocked(uint64_t hash, const std::string& key);
  void TouchLocked(Entry& entry);
  void InsertLocked(uint64_t hash, const std::string& key, LemmaValue value,
                    const std::vector<LinearAtom>& atoms, uint64_t pivots,
                    bool infeasible_core);
  void ReduceLocked();
  void EraseLocked(uint64_t id, Entry& entry, uint64_t* tier_counter);
  std::vector<DisjunctId> OccurrencesOfLocked(
      const std::vector<LinearAtom>& atoms) const;
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  const Options options_;
  mutable std::mutex mu_;
  LemmaDbStats stats_;
  std::atomic<uint64_t> epoch_{0};

  uint64_t next_id_ = 0;
  double activity_inc_ = 1.0;
  uint64_t inserts_since_decay_ = 0;

  /// id -> entry; node-based, so Entry addresses are stable under growth.
  std::unordered_map<uint64_t, Entry> entries_;
  /// canonical hash -> ids of entries with that hash (collision chains).
  std::unordered_map<uint64_t, std::vector<uint64_t>> index_;

  /// Occurrence machinery. `atom_index_` maps a canonical atom hash to the
  /// bound disjuncts containing that atom; `disjunct_lemmas_` maps a
  /// disjunct to the (lazily pruned) ids of lemmas that recorded it.
  uint64_t bound_fingerprint_ = 0;
  bool bound_ = false;
  std::unordered_map<uint64_t, std::vector<DisjunctId>> atom_index_;
  std::vector<std::vector<uint64_t>> disjunct_lemmas_;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_LEMMA_DB_H_
