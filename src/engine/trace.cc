#include "engine/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

namespace lcdb {

namespace internal {
std::atomic<int> g_active_tracers{0};
}  // namespace internal

namespace {

thread_local QueryTracer* t_current_tracer = nullptr;

/// Minimal JSON string escaping (span names are ASCII identifiers, but the
/// exporter must never emit malformed JSON whatever the name).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

QueryTracer* CurrentTracerOrNull() { return t_current_tracer; }

ScopedTracer::ScopedTracer(QueryTracer& tracer)
    : previous_(t_current_tracer) {
  t_current_tracer = &tracer;
  internal::g_active_tracers.fetch_add(1, std::memory_order_relaxed);
}

ScopedTracer::~ScopedTracer() {
  t_current_tracer = previous_;
  internal::g_active_tracers.fetch_sub(1, std::memory_order_relaxed);
}

QueryTracer::QueryTracer(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  epoch_ns_ = 0;
  epoch_ns_ = NowNs();
  completed_.reserve(std::min<size_t>(options_.capacity, 1u << 12));
}

QueryTracer::~QueryTracer() = default;

uint64_t QueryTracer::NowNs() const {
  return static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) -
         epoch_ns_;
}

uint64_t QueryTracer::BeginSpan(const char* name) {
  Span span;
  span.id = ++next_id_;
  span.parent = open_.empty() ? 0 : open_.back().id;
  span.name = name;
  span.start_ns = NowNs();
  open_.push_back(std::move(span));
  return open_.back().id;
}

void QueryTracer::EndSpan(uint64_t id) {
  // Spans close LIFO; tolerate a mismatched id by unwinding to it, so an
  // exception path that skipped inner EndSpan calls (guards handle this,
  // but belt and braces) cannot corrupt the stack.
  while (!open_.empty()) {
    Span span = std::move(open_.back());
    open_.pop_back();
    const bool match = span.id == id;
    span.end_ns = NowNs();
    if (completed_.size() < options_.capacity) {
      completed_.push_back(std::move(span));
    } else {
      // Ring overwrite of the oldest completed span.
      completed_[completed_head_] = std::move(span);
      completed_head_ = (completed_head_ + 1) % completed_.size();
      ++dropped_;
    }
    if (match) return;
  }
}

void QueryTracer::Counter(const char* name, uint64_t value) {
  if (open_.empty()) return;
  auto& counters = open_.back().counters;
  for (auto& [existing, existing_value] : counters) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  counters.emplace_back(name, value);
}

std::string QueryTracer::ToChromeTraceJson() const {
  // Chrome trace-event format, JSON-object flavour: complete ("X") events
  // with microsecond ts/dur, one process, one thread. Loadable in Perfetto
  // and chrome://tracing as-is.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const Span& span) {
    if (!first) out += ",";
    first = false;
    const uint64_t dur_ns =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"cat\":\"lcdb\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(span.start_ns / 1000) + "." +
           std::to_string((span.start_ns % 1000) / 100);
    out += ",\"dur\":" + std::to_string(dur_ns / 1000) + "." +
           std::to_string((dur_ns % 1000) / 100);
    out += ",\"pid\":1,\"tid\":1";
    out += ",\"args\":{\"id\":" + std::to_string(span.id) +
           ",\"parent\":" + std::to_string(span.parent);
    for (const auto& [name, value] : span.counters) {
      out += ",\"" + JsonEscape(name) + "\":" + std::to_string(value);
    }
    out += "}}";
  };
  // Begin order (= id order) keeps parents before children, which Perfetto
  // prefers for nesting reconstruction of same-timestamp spans.
  std::vector<const Span*> ordered;
  ordered.reserve(completed_.size());
  for (const Span& span : completed_) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });
  for (const Span* span : ordered) emit(*span);
  out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{";
  out += "\"spans_dropped\":" + std::to_string(dropped_) + "}}";
  return out;
}

void QueryTracer::VisitCompletedSpans(
    const std::function<void(const std::string&, uint64_t)>& visit) const {
  std::vector<const Span*> ordered;
  ordered.reserve(completed_.size());
  for (const Span& span : completed_) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });
  for (const Span* span : ordered) {
    const uint64_t dur_ns =
        span->end_ns >= span->start_ns ? span->end_ns - span->start_ns : 0;
    visit(span->name, dur_ns);
  }
}

std::string QueryTracer::ToTreeString(bool zero_timestamps) const {
  std::vector<const Span*> ordered;
  ordered.reserve(completed_.size());
  for (const Span& span : completed_) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });
  std::map<uint64_t, const Span*> by_id;
  for (const Span* span : ordered) by_id.emplace(span->id, span);
  // Depth through *retained* ancestry: spans whose parents were dropped by
  // the ring bound render as roots rather than being lost.
  auto depth_of = [&](const Span* span) {
    size_t depth = 0;
    for (uint64_t p = span->parent; p != 0;) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      ++depth;
      p = it->second->parent;
    }
    return depth;
  };
  std::string out;
  for (const Span* span : ordered) {
    out.append(2 * depth_of(span), ' ');
    out += span->name;
    if (!zero_timestamps) {
      const uint64_t dur_ns =
          span->end_ns >= span->start_ns ? span->end_ns - span->start_ns : 0;
      out += " (" + std::to_string(dur_ns / 1000) + "us)";
    }
    for (const auto& [name, value] : span->counters) {
      out += " " + name + "=" + std::to_string(value);
    }
    out += "\n";
  }
  return out;
}

}  // namespace lcdb
