#include "engine/session.h"

#include <string>
#include <utility>

#include "constraint/canonical.h"
#include "core/parser.h"

namespace lcdb {

namespace {

/// Budget multiplication that saturates at kUnlimited instead of wrapping.
uint64_t Escalate(uint64_t value, uint64_t factor) {
  if (value == GovernorLimits::kUnlimited || factor <= 1) return value;
  if (value > GovernorLimits::kUnlimited / factor) {
    return GovernorLimits::kUnlimited;
  }
  return value * factor;
}

bool AnyFinite(const GovernorLimits& limits) {
  const uint64_t u = GovernorLimits::kUnlimited;
  return limits.wall_clock_ms != u || limits.max_feasibility_queries != u ||
         limits.max_simplex_pivots != u ||
         limits.max_fixpoint_iterations != u || limits.max_tuple_space != u ||
         limits.max_dnf_disjuncts != u || limits.max_bigint_bits != u;
}

}  // namespace

std::string SessionStats::ToString() const {
  std::string out = "queries=" + std::to_string(queries);
  out += " successes=" + std::to_string(successes);
  out += " failures=" + std::to_string(failures);
  out += " invalid=" + std::to_string(invalid);
  out += " attempts=" + std::to_string(attempts);
  out += " retries=" + std::to_string(retries);
  out += " resumes=" + std::to_string(resumes);
  out += " degradations=" + std::to_string(degradations);
  out += " budget_escalations=" + std::to_string(budget_escalations);
  out += " quarantined=" + std::to_string(quarantined);
  out += " quarantine_rejections=" + std::to_string(quarantine_rejections);
  return out;
}

QuerySession::QuerySession(const RegionExtension& extension,
                           SessionOptions options)
    : ext_(extension), options_(std::move(options)) {
  if (options_.profile.sample_every > 0) {
    profiler_ = std::make_unique<ContinuousProfiler>(options_.profile);
  }
  if (!options_.postmortem_dir.empty()) {
    PostmortemWriter::Options postmortem_options;
    postmortem_options.directory = options_.postmortem_dir;
    postmortem_ = std::make_unique<PostmortemWriter>(postmortem_options);
  }
}

QuerySession::LadderState QuerySession::InitialLadder(
    bool force_trace) const {
  LadderState ladder;
  ladder.kernel = options_.kernel;
  ladder.limits = options_.limits;
  ladder.trace = options_.trace || force_trace;
  // The fixed drop order DESIGN.md documents: shed the newest/most
  // speculative machinery first, the answer-preserving basics last.
  if (options_.eval.use_bytecode) ladder.rungs.push_back("vm->tree");
  if (ladder.kernel.memoize && ladder.kernel.use_lemma_db) {
    ladder.rungs.push_back("lemma->lru");
  }
  if (ladder.kernel.memoize) ladder.rungs.push_back("memoize->off");
  if (ladder.trace) ladder.rungs.push_back("trace->off");
  return ladder;
}

bool QuerySession::Degrade(LadderState& ladder, Evaluator& evaluator,
                           size_t attempt) {
  if (ladder.rungs.empty()) return false;
  const std::string rung = ladder.rungs.front();
  ladder.rungs.erase(ladder.rungs.begin());
  if (rung == "vm->tree") {
    // Same evaluator: resume tokens are instance-scoped, and the resume
    // fingerprint treats VM and tree walk as one backend, so an in-flight
    // checkpoint replays on the tree side (core/resume.h).
    evaluator.mutable_options().use_bytecode = false;
  } else if (rung == "lemma->lru") {
    ladder.kernel.use_lemma_db = false;
  } else if (rung == "memoize->off") {
    ladder.kernel.memoize = false;
  } else if (rung == "trace->off") {
    ladder.trace = false;
  }
  ladder.resource_failures_at_rung = 0;
  ++stats_.degradations;
  degradation_log_.push_back(DegradationStep{rung, attempt});
  return true;
}

void QuerySession::EscalateBudgets(LadderState& ladder) {
  const uint64_t f = options_.budget_escalation;
  if (f <= 1 || !AnyFinite(ladder.limits)) return;
  GovernorLimits& l = ladder.limits;
  l.wall_clock_ms = Escalate(l.wall_clock_ms, f);
  l.max_feasibility_queries = Escalate(l.max_feasibility_queries, f);
  l.max_simplex_pivots = Escalate(l.max_simplex_pivots, f);
  l.max_fixpoint_iterations = Escalate(l.max_fixpoint_iterations, f);
  l.max_tuple_space = Escalate(l.max_tuple_space, f);
  l.max_dnf_disjuncts = Escalate(l.max_dnf_disjuncts, f);
  l.max_bigint_bits = Escalate(l.max_bigint_bits, f);
  ++stats_.budget_escalations;
}

void QuerySession::RecordDeterministicFailure(const std::string& key) {
  ++stats_.failures;
  const size_t streak = ++failure_streaks_[key];
  if (options_.quarantine_threshold > 0 &&
      streak >= options_.quarantine_threshold &&
      quarantine_.insert(key).second) {
    ++stats_.quarantined;
  }
}

Result<QueryAnswer> QuerySession::RunLadder(const FormulaNode& query,
                                            const std::string& key,
                                            std::string_view source,
                                            bool force_trace) {
  LadderState ladder = InitialLadder(force_trace);
  // Untraced call: drop the previous call's tracer so the tracer() /
  // post-mortem surfaces never serve a stale span tree as this call's.
  if (!ladder.trace) tracer_.reset();
  Evaluator::Options eval_options = options_.eval;
  if (options_.use_resume) eval_options.capture_resume = true;
  // One evaluator spans every attempt of this call: resume tokens are
  // scoped to the instance, and the vm->tree rung flips its options in
  // place so checkpoints survive the drop.
  Evaluator evaluator(ext_, eval_options);
  evaluator.AttachSource(std::string(source));

  uint64_t resume_token = 0;
  Status last;
  for (size_t attempt = 0;; ++attempt) {
    ++stats_.attempts;
    // Fresh kernel per attempt: a degraded rung must not serve verdicts
    // cached by the configuration that just failed. The shared lemma store
    // (when configured) survives on purpose — its verdicts are
    // backend-independent.
    ConstraintKernel kernel(
        ladder.kernel,
        (ladder.kernel.memoize && ladder.kernel.use_lemma_db)
            ? options_.lemmas
            : nullptr);
    ScopedKernel scoped_kernel(kernel);
    std::unique_ptr<QueryGovernor> governor;
    std::unique_ptr<ScopedGovernor> scoped_governor;
    if (AnyFinite(ladder.limits)) {
      governor = std::make_unique<QueryGovernor>(ladder.limits);
      scoped_governor = std::make_unique<ScopedGovernor>(*governor);
    }
    std::unique_ptr<ScopedTracer> scoped_tracer;
    if (ladder.trace) {
      tracer_ = std::make_unique<QueryTracer>();
      scoped_tracer = std::make_unique<ScopedTracer>(*tracer_);
    }

    auto answer = evaluator.Evaluate(query, resume_token);
    resume_token = 0;  // tokens are single-use; never replay one
    // The evaluator snapshots the attempt's governor stats itself on
    // settle, so this already carries governor.* (incl. tripped_budget).
    last_eval_metrics_ = evaluator.stats().ToMetrics();
    if (answer.ok()) {
      ++stats_.successes;
      failure_streaks_.erase(key);
      last_failure_class_ = FailureClassName(FailureClass::kNone);
      return answer;
    }

    last = answer.status();
    const FailureClass c = ClassifyFailure(last);
    last_failure_class_ = FailureClassName(c);
    if (c == FailureClass::kInvalid) {
      ++stats_.invalid;
      return last;
    }
    if (c == FailureClass::kCancelled) {
      ++stats_.failures;
      return last;
    }
    if (attempt >= options_.max_retries) break;
    if (c == FailureClass::kResource) {
      ++ladder.resource_failures_at_rung;
      EscalateBudgets(ladder);
      if (options_.use_resume && last.resume_token() != 0) {
        resume_token = last.resume_token();
        ++stats_.resumes;
      }
      // Escalation alone did not save the previous retry at this rung:
      // suspect the backend, not just the budget, and shed a rung too.
      if (ladder.resource_failures_at_rung >= 2) {
        Degrade(ladder, evaluator, attempt);
      }
      ++stats_.retries;
      continue;
    }
    // kFault: the configuration is suspect; retry only with less of it.
    if (!Degrade(ladder, evaluator, attempt)) break;
    ++stats_.retries;
  }

  RecordDeterministicFailure(key);
  return last;
}

Result<QueryAnswer> QuerySession::Evaluate(std::string_view query_text) {
  ++stats_.queries;
  // Per-call observability context: the profiler's deterministic sampling
  // decision (made before the query runs) and the counter baselines whose
  // deltas annotate the flight record and the post-mortem bundle.
  const bool sampled = profiler_ != nullptr && profiler_->ShouldSample();
  const uint64_t attempts_before = stats_.attempts;
  const uint64_t retries_before = stats_.retries;
  const uint64_t resumes_before = stats_.resumes;
  const size_t ladder_log_before = degradation_log_.size();
  QueryFlightRecorder* recorder = ActiveFlightRecorderOrNull();
  const uint64_t appended_before =
      recorder != nullptr ? recorder->appended() : 0;
  const uint64_t start_ns = ObsNowNs();

  // Observability epilogue shared by every exit of this call.
  auto finish = [&](const Status& status) {
    const uint64_t total_ns = ObsNowNs() - start_ns;
    const bool attempted = stats_.attempts > attempts_before;
    const char* outcome = FailureClassName(ClassifyFailure(status));
    if (profiler_ != nullptr) {
      profiler_->RecordQuery(
          total_ns, !status.ok(),
          (sampled && attempted) ? tracer_.get() : nullptr);
    }
    if (recorder != nullptr) {
      if (recorder->appended() == appended_before) {
        // No attempt ran (quarantine rejection, parse error), so the
        // evaluator appended nothing; the session appends a minimal record
        // itself — the flight log covers *every* query, not every attempt.
        QueryRecord rec;
        rec.query_hash = StableHash64(std::string(query_text));
        rec.backend = "none";
        rec.total_ns = total_ns;
        rec.outcome = outcome;
        rec.status_code = StatusCodeName(status.code());
        recorder->Append(std::move(rec));
      }
      recorder->AnnotateLast(stats_.retries - retries_before,
                             stats_.resumes - resumes_before, outcome,
                             sampled);
    }
    if (!status.ok() && postmortem_ != nullptr) {
      WritePostmortem(query_text, status,
                      stats_.attempts - attempts_before,
                      stats_.retries - retries_before,
                      stats_.resumes - resumes_before, ladder_log_before,
                      attempted);
    }
  };

  const std::string key(query_text);
  if (quarantine_.find(key) != quarantine_.end()) {
    ++stats_.quarantine_rejections;
    Status rejected = Status::ResourceExhausted(
        "query is quarantined after repeated deterministic failures; "
        "ClearQuarantine() lifts it");
    finish(rejected);
    return rejected;
  }
  auto parsed = ParseQuery(query_text, ext_.database().relation_name());
  if (!parsed.ok()) {
    ++stats_.invalid;
    last_failure_class_ = FailureClassName(FailureClass::kInvalid);
    finish(parsed.status());
    return parsed.status();
  }
  auto answer = RunLadder(**parsed, key, query_text, sampled);
  finish(answer.ok() ? Status::Ok() : answer.status());
  return answer;
}

void QuerySession::WritePostmortem(std::string_view query_text,
                                   const Status& status, uint64_t attempts,
                                   uint64_t retries, uint64_t resumes,
                                   size_t ladder_log_before,
                                   bool attempted) {
  PostmortemBundle bundle;
  bundle.query_hash = StableHash64(std::string(query_text));
  bundle.query_text = std::string(query_text);
  bundle.status_code = StatusCodeName(status.code());
  bundle.status_message = status.message();
  bundle.failure_class = FailureClassName(ClassifyFailure(status));
  bundle.resume_token = status.resume_token();
  bundle.attempts = attempts;
  bundle.retries = retries;
  bundle.resumes = resumes;
  for (size_t i = ladder_log_before; i < degradation_log_.size(); ++i) {
    bundle.ladder.push_back(degradation_log_[i].rung + "@" +
                            std::to_string(degradation_log_[i].attempt));
  }
  if (attempted && tracer_ != nullptr) {
    bundle.span_tree = tracer_->ToTreeString();
  }
  // The metrics delta vs query start: last_eval_metrics_ is exactly the
  // final attempt's evaluator families (each Evaluate resets its per-query
  // stats), so no subtraction is needed here.
  bundle.metrics_json = attempted ? last_eval_metrics_.ToJson() : "{}";
  if (QueryFlightRecorder* recorder = ActiveFlightRecorderOrNull()) {
    bundle.flight_tail = recorder->Tail(8);
  }
  // Best-effort by contract (see session.h): a failed diagnostic write
  // must not mask the query's own failure.
  (void)postmortem_->Write(bundle);
}

Result<bool> QuerySession::EvaluateSentence(std::string_view query_text) {
  auto answer = Evaluate(query_text);
  if (!answer.ok()) return answer.status();
  if (!answer->free_vars.empty()) {
    return Status::InvalidArgument(
        "sentence expected: query has free element variables");
  }
  return !answer->formula.IsEmpty();
}

bool QuerySession::IsQuarantined(std::string_view query_text) const {
  return quarantine_.find(query_text) != quarantine_.end();
}

void QuerySession::ClearQuarantine() {
  quarantine_.clear();
  failure_streaks_.clear();
  stats_.quarantined = 0;
}

MetricsSnapshot QuerySession::Metrics() const {
  MetricsRegistry registry;
  registry.Count("session.queries", stats_.queries);
  registry.Count("session.successes", stats_.successes);
  registry.Count("session.failures", stats_.failures);
  registry.Count("session.invalid", stats_.invalid);
  registry.Count("session.attempts", stats_.attempts);
  registry.Count("session.retries", stats_.retries);
  registry.Count("session.resumes", stats_.resumes);
  registry.Count("session.degradations", stats_.degradations);
  registry.Count("session.budget_escalations", stats_.budget_escalations);
  registry.Gauge("session.quarantined", stats_.quarantined);
  registry.Count("session.quarantine_rejections",
                 stats_.quarantine_rejections);
  if (!last_failure_class_.empty()) {
    registry.Label("session.last_failure_class", last_failure_class_);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.Merge(last_eval_metrics_);
  // The cross-query profile.* family (histograms fed by sampled traces)
  // rides along, so one --stats dump carries both scopes.
  if (profiler_ != nullptr) snapshot.Merge(profiler_->Metrics());
  return snapshot;
}

}  // namespace lcdb
