#include "engine/profiler.h"

#include <utility>

namespace lcdb {

ContinuousProfiler::ContinuousProfiler(Options options) : options_(options) {
  if (options_.keep_traces == 0) options_.keep_traces = 1;
}

bool ContinuousProfiler::ShouldSample() {
  const uint64_t index = queries_++;
  if (options_.sample_every == 0) return false;
  const bool sample = index % options_.sample_every == 0;
  if (sample) ++sampled_;
  return sample;
}

void ContinuousProfiler::RecordQuery(uint64_t total_ns, bool failed,
                                     const QueryTracer* tracer) {
  registry_.Observe("profile.query.total_ns", total_ns);
  if (tracer == nullptr) return;
  tracer->VisitCompletedSpans(
      [&](const std::string& name, uint64_t dur_ns) {
        registry_.Observe("profile.op." + name, dur_ns);
      });
  if (failed || IsSlowTail(total_ns)) {
    RetainedTrace trace;
    trace.query_index = queries_;
    trace.total_ns = total_ns;
    trace.failed = failed;
    trace.tree = tracer->ToTreeString();
    Retain(std::move(trace));
  }
}

bool ContinuousProfiler::IsSlowTail(uint64_t total_ns) const {
  const MetricsSnapshot snapshot = registry_.Snapshot();
  auto it = snapshot.histograms.find("profile.query.total_ns");
  if (it == snapshot.histograms.end()) return true;
  if (it->second.count < options_.min_samples_for_tail) return true;
  return total_ns >= it->second.Percentile(0.90);
}

void ContinuousProfiler::Retain(RetainedTrace trace) {
  if (retained_.size() >= options_.keep_traces) {
    // Evict the oldest non-failed tree first; failure trees are the ones a
    // post-mortem wants, so they go only when nothing else is left.
    auto victim = retained_.end();
    for (auto it = retained_.begin(); it != retained_.end(); ++it) {
      if (!it->failed) {
        victim = it;
        break;
      }
    }
    if (victim == retained_.end()) victim = retained_.begin();
    retained_.erase(victim);
  }
  retained_.push_back(std::move(trace));
}

MetricsSnapshot ContinuousProfiler::Metrics() const {
  MetricsSnapshot snapshot = registry_.Snapshot();
  snapshot.values["profile.queries"] = queries_;
  snapshot.values["profile.sampled"] = sampled_;
  snapshot.values["profile.traces_retained"] = retained_.size();
  return snapshot;
}

}  // namespace lcdb
