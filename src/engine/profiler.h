#ifndef LCDB_ENGINE_PROFILER_H_
#define LCDB_ENGINE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/trace.h"

namespace lcdb {

/// Sampled continuous profiler: the cross-query aggregation layer over the
/// per-query tracer. Per the ROADMAP's `lcdbd` item, a serving process
/// cannot trace every query — instead this samples the tracer
/// *deterministically* every Nth query, folds the sampled spans' inclusive
/// times into the `profile.op.*` histogram family (p50/p90/p99 derivable
/// from the log2 buckets), and retains whole span trees only for the
/// queries worth keeping: failures and the slowest decile.
///
/// Determinism is a testing and fleet-attribution feature: query k (1-based)
/// is sampled iff (k-1) % sample_every == 0, so N queries yield exactly
/// ceil(N / sample_every) traces — no RNG, reproducible across runs.
///
/// Thread model: owned and driven by one QuerySession (single-threaded,
/// like the Evaluator it wraps).
class ContinuousProfiler {
 public:
  struct Options {
    /// Sampling period: every Nth query carries a tracer. 0 disables
    /// sampling entirely (ShouldSample always false); 1 traces everything.
    uint64_t sample_every = 64;
    /// Bound on retained span trees (failed + slow-tail queries). Oldest
    /// non-failed trees are evicted first, then oldest failed.
    size_t keep_traces = 8;
    /// Total-latency observations required before the slow-tail test
    /// trusts its p90 estimate; until then every sampled trace is retained
    /// (a cold profiler should keep what little it has seen).
    uint64_t min_samples_for_tail = 16;
  };

  ContinuousProfiler() : ContinuousProfiler(Options{}) {}
  explicit ContinuousProfiler(Options options);

  /// Deterministic sampling decision for the next query; call exactly once
  /// per query *before* running it. True means "install a tracer".
  bool ShouldSample();

  /// Observes one completed query. `total_ns` always lands in the
  /// profile.query.total_ns histogram (every query funds the tail
  /// threshold, sampled or not). When `tracer` is non-null — a sampled
  /// query — each completed span folds into profile.op.<name> and the span
  /// tree is retained if the query failed or its latency reached the
  /// slowest decile of everything seen so far.
  void RecordQuery(uint64_t total_ns, bool failed, const QueryTracer* tracer);

  /// A span tree the tail policy decided to keep.
  struct RetainedTrace {
    uint64_t query_index = 0;  ///< 1-based index among queries seen
    uint64_t total_ns = 0;
    bool failed = false;
    std::string tree;  ///< QueryTracer::ToTreeString()
  };
  const std::vector<RetainedTrace>& retained() const { return retained_; }

  uint64_t queries_seen() const { return queries_; }
  uint64_t queries_sampled() const { return sampled_; }

  /// The profile.* family: profile.queries / profile.sampled /
  /// profile.traces_retained counters, the profile.query.total_ns
  /// histogram, and one profile.op.<name> histogram per sampled span name.
  MetricsSnapshot Metrics() const;

 private:
  /// Slow-tail test: `total_ns` at or above the p90 estimate of every
  /// total latency seen so far (always true while under
  /// min_samples_for_tail observations).
  bool IsSlowTail(uint64_t total_ns) const;
  void Retain(RetainedTrace trace);

  Options options_;
  uint64_t queries_ = 0;
  uint64_t sampled_ = 0;
  MetricsRegistry registry_;
  std::vector<RetainedTrace> retained_;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_PROFILER_H_
