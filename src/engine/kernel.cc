#include "engine/kernel.h"

#include <utility>

#include "engine/governor.h"
#include "util/failpoint.h"

namespace lcdb {

namespace {
thread_local ConstraintKernel* t_current_kernel = nullptr;
}  // namespace

ConstraintKernel& DefaultKernel() {
  // Leaked on purpose: consumers may run during static destruction.
  static ConstraintKernel* kernel = new ConstraintKernel();
  return *kernel;
}

ConstraintKernel& CurrentKernel() {
  return t_current_kernel != nullptr ? *t_current_kernel : DefaultKernel();
}

ScopedKernel::ScopedKernel(ConstraintKernel& kernel)
    : previous_(t_current_kernel) {
  t_current_kernel = &kernel;
}

ScopedKernel::~ScopedKernel() { t_current_kernel = previous_; }

FeasibilityResult ConstraintKernel::CheckFeasibility(
    size_t num_vars, const std::vector<LinearConstraint>& constraints) {
  return CachedFeasibility(CanonicalizeSystem(num_vars, constraints));
}

FeasibilityResult ConstraintKernel::Feasibility(const Conjunction& conj) {
  return CachedFeasibility(CanonicalizeConjunction(conj));
}

bool ConstraintKernel::IsConsistentWithNegation(
    size_t num_vars, const std::vector<LinearConstraint>& constraints,
    const LinearConstraint& c) {
  return DecideConsistentWithNegation(
      CanonicalizeSystem(num_vars, constraints),
      LinearAtom(c.coeffs, c.rel, c.rhs));
}

bool ConstraintKernel::IsConsistentWithNegation(const Conjunction& conj,
                                               const LinearAtom& atom) {
  return DecideConsistentWithNegation(CanonicalizeConjunction(conj), atom);
}

bool ConstraintKernel::IsBoundedSystem(
    size_t num_vars, const std::vector<LinearConstraint>& constraints) {
  LCDB_FAILPOINT("kernel.decide");
  GovernorOnFeasibilityQuery();
  const SimplexCounters before = GetSimplexCounters();
  const bool bounded = lcdb::IsBoundedSystem(num_vars, constraints);
  const SimplexCounters after = GetSimplexCounters();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.oracle_calls;
  stats_.simplex_invocations += after.invocations - before.invocations;
  stats_.simplex_pivots += after.pivots - before.pivots;
  return bounded;
}

FeasibilityResult ConstraintKernel::CachedFeasibility(
    const CanonicalSystem& canon) {
  // Injection + budget site, deliberately before the lock and before any
  // cache mutation: an interrupt here (or anywhere in the LP solve below)
  // can only suppress an insertion, so the caches stay complete-or-absent.
  LCDB_FAILPOINT("kernel.decide");
  GovernorOnFeasibilityQuery();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.feasibility_queries;
    if (canon.syntactically_false) {
      ++stats_.trivial_answers;
      return {false, {}};
    }
    if (canon.atoms.empty()) {
      // TRUE system: the origin is a witness.
      ++stats_.trivial_answers;
      return {true, Vec(canon.num_vars)};
    }
    if (options_.memoize && lemma_db_ == nullptr) {
      if (const FeasibilityResult* hit = feasibility_cache_.Lookup(
              canon.hash, canon.encoding,
              &stats_.canonicalization_collisions)) {
        ++stats_.cache_hits;
        return *hit;
      }
      ++stats_.cache_misses;
    }
  }
  if (lemma_db_ != nullptr) {
    // The lemma DB takes its own lock; never nested under mu_.
    std::optional<FeasibilityResult> hit = lemma_db_->LookupFeasibility(canon);
    std::lock_guard<std::mutex> lock(mu_);
    if (hit.has_value()) {
      ++stats_.cache_hits;
      return *hit;
    }
    ++stats_.cache_misses;
  }
  // The LP solve runs outside the lock so a future parallel caller is not
  // serialized on the simplex; a concurrent duplicate miss only costs a
  // redundant solve, never a wrong answer.
  std::vector<LinearConstraint> constraints;
  constraints.reserve(canon.atoms.size());
  for (const LinearAtom& atom : canon.atoms) {
    constraints.push_back(atom.ToLinearConstraint());
  }
  const SimplexCounters before = GetSimplexCounters();
  FeasibilityResult result =
      lcdb::CheckFeasibility(canon.num_vars, constraints);
  const SimplexCounters after = GetSimplexCounters();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.oracle_calls;
    stats_.simplex_invocations += after.invocations - before.invocations;
    stats_.simplex_pivots += after.pivots - before.pivots;
    if (options_.memoize && lemma_db_ == nullptr) {
      feasibility_cache_.Insert(canon.hash, canon.encoding, result,
                                &stats_.cache_evictions);
    }
  }
  if (lemma_db_ != nullptr) {
    // The solve cost drives the tier: expensive proofs and infeasible
    // cores are worth keeping regardless of activity.
    lemma_db_->InsertFeasibility(canon, result, after.pivots - before.pivots);
  }
  return result;
}

bool ConstraintKernel::DecideConsistentWithNegation(
    const CanonicalSystem& canon, const LinearAtom& atom) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.implication_queries;
    if (canon.syntactically_false) {
      // An infeasible system is consistent with nothing.
      ++stats_.trivial_answers;
      return false;
    }
    if (atom.IsConstant()) {
      ++stats_.trivial_answers;
      if (atom.ConstantValue()) return false;  // NOT(true) is unsatisfiable
      // NOT(false) imposes nothing: fall through to plain feasibility.
    }
  }
  if (atom.IsConstant()) {
    return CachedFeasibility(canon).feasible;  // constant-true returned above
  }

  std::string key = canon.encoding;
  key.push_back('!');
  AppendAtomEncoding(atom, &key);
  const uint64_t hash = StableHash64(key);
  if (options_.memoize && lemma_db_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (const bool* hit = implication_cache_.Lookup(
            hash, key, &stats_.canonicalization_collisions)) {
      ++stats_.implication_cache_hits;
      return *hit;
    }
    ++stats_.implication_cache_misses;
  }
  if (lemma_db_ != nullptr) {
    std::optional<bool> hit = lemma_db_->LookupImplication(hash, key);
    std::lock_guard<std::mutex> lock(mu_);
    if (hit.has_value()) {
      ++stats_.implication_cache_hits;
      return *hit;
    }
    ++stats_.implication_cache_misses;
  }
  // Decide each branch of the negation through the feasibility cache, so
  // the per-branch systems are shared with every other consumer that asks
  // about them directly.
  const SimplexCounters before = GetSimplexCounters();
  bool consistent = false;
  for (const LinearAtom& negated : atom.Negate()) {
    std::vector<LinearAtom> atoms = canon.atoms;
    atoms.push_back(negated);
    Conjunction branch(canon.num_vars, std::move(atoms));
    if (CachedFeasibility(CanonicalizeConjunction(branch)).feasible) {
      consistent = true;
      break;
    }
  }
  if (options_.memoize && lemma_db_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    implication_cache_.Insert(hash, std::move(key), consistent,
                              &stats_.cache_evictions);
  }
  if (lemma_db_ != nullptr) {
    // A proved implication (consistent == false) is pinned core inside the
    // store; the pivot delta across the branch solves prices the proof.
    const SimplexCounters after = GetSimplexCounters();
    lemma_db_->InsertImplication(hash, key, canon.atoms, consistent,
                                 after.pivots - before.pivots);
  }
  return consistent;
}

void ConstraintKernel::BindLemmaOccurrences(const DnfFormula& representation) {
  if (lemma_db_ != nullptr) lemma_db_->BindDisjuncts(representation);
}

size_t ConstraintKernel::InvalidateDisjunct(DisjunctId disjunct) {
  return lemma_db_ != nullptr ? lemma_db_->InvalidateDisjunct(disjunct) : 0;
}

KernelStats ConstraintKernel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  KernelStats out = stats_;
  if (lemma_db_ != nullptr) {
    // Fold in this kernel's share of the (possibly shared) lemma store:
    // the cumulative DB counters minus the attach/ResetStats baseline.
    // Lock order is always kernel -> lemma DB, never the reverse.
    const LemmaDbStats d = lemma_db_->stats() - lemma_baseline_;
    out.lemma_hits = d.hits;
    out.lemma_misses = d.misses;
    out.lemma_insertions = d.insertions;
    out.lemma_evictions_core = d.evictions_core;
    out.lemma_evictions_frequent = d.evictions_frequent;
    out.lemma_evictions_transient = d.evictions_transient;
    out.lemma_invalidations = d.invalidations;
    out.lemma_decays = d.decays;
    out.lemma_occupancy = lemma_db_->size();
    // The aggregate counters keep their backend-independent meaning.
    out.cache_evictions += d.evictions_total();
    out.canonicalization_collisions += d.collisions;
  }
  return out;
}

void ConstraintKernel::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = KernelStats();
  if (lemma_db_ != nullptr) lemma_baseline_ = lemma_db_->stats();
}

void ConstraintKernel::ClearCache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    feasibility_cache_.Clear();
    implication_cache_.Clear();
  }
  if (lemma_db_ != nullptr) lemma_db_->Clear();
  // The epoch move is what lets the VM's inline caches observe the clear
  // (satellite contract: a cleared kernel never serves a stale icache hit).
  clear_epoch_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lcdb
