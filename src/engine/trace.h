#ifndef LCDB_ENGINE_TRACE_H_
#define LCDB_ENGINE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lcdb {

/// Span-based query tracer: records *where inside one query* the time went —
/// Evaluate → plan build / optimizer passes → per-plan-node execution →
/// fixpoint stages / Fourier-Motzkin projection rounds / simplex solves /
/// arrangement splits — as a tree of timed spans with attached counters.
///
/// Install with ScopedTracer, mirroring ScopedKernel/ScopedGovernor. The
/// disabled path (no tracer installed anywhere in the process) costs one
/// relaxed atomic load and a predicted branch per span site, exactly the
/// failpoint facility's contract; installing any tracer switches the sites
/// on that thread onto the recording path.
///
/// Spans land in a bounded ring buffer of completed records: when more
/// spans are produced than `Options::capacity`, the oldest complete spans
/// are dropped (counted in spans_dropped()) while the open-span stack —
/// the path from the root to the currently executing operator — is always
/// kept, so the exported trace stays a forest with intact ancestry.
///
/// Exporters:
///  * ToChromeTraceJson() — Chrome trace-event JSON ("X" complete events),
///    loadable in Perfetto / chrome://tracing (`lcdbq --trace=out.json`);
///  * ToTreeString() — indented span tree with optional zeroed timestamps,
///    the stable rendering the golden test pins.
///
/// Thread model: one tracer serves one query on one thread (like the
/// executor). RequestingCounters/spans from other threads is not supported;
/// the activation check is the only cross-thread-visible state.
class QueryTracer {
 public:
  struct Options {
    /// Ring-buffer bound on retained *completed* spans.
    size_t capacity = 1u << 14;
  };

  QueryTracer() : QueryTracer(Options{}) {}
  explicit QueryTracer(Options options);
  ~QueryTracer();

  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Opens a span; returns its id. `name` is copied. Spans close LIFO.
  uint64_t BeginSpan(const char* name);
  void EndSpan(uint64_t id);
  /// Attaches `name`=`value` to the innermost open span (repeat names
  /// overwrite, so loops can publish their final trip counts).
  void Counter(const char* name, uint64_t value);

  /// Completed spans currently retained / dropped by the ring bound /
  /// total ever begun (dropped + retained + open = begun).
  size_t spans_retained() const { return completed_.size(); }
  uint64_t spans_dropped() const { return dropped_; }
  uint64_t spans_begun() const { return next_id_; }

  std::string ToChromeTraceJson() const;
  /// Indented tree of completed spans in begin order. With
  /// `zero_timestamps` the time columns are omitted entirely, leaving only
  /// structure, names and counters — byte-stable across runs.
  std::string ToTreeString(bool zero_timestamps = false) const;

  /// Visits every retained completed span as (name, inclusive duration ns)
  /// in begin order — the continuous profiler's folding hook
  /// (engine/profiler.h): per-op histograms need durations, not structure.
  void VisitCompletedSpans(
      const std::function<void(const std::string&, uint64_t)>& visit) const;

 private:
  struct Span {
    uint64_t id = 0;
    uint64_t parent = 0;  ///< parent span id; 0 = root (ids start at 1)
    std::string name;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    std::vector<std::pair<std::string, uint64_t>> counters;
  };

  uint64_t NowNs() const;

  Options options_;  ///< normalized at construction (capacity >= 1)
  uint64_t epoch_ns_ = 0;     ///< steady_clock at construction
  uint64_t next_id_ = 0;      ///< ids handed out (== spans begun)
  uint64_t dropped_ = 0;
  std::vector<Span> open_;    ///< stack: root ... innermost
  std::vector<Span> completed_;  ///< ring: oldest dropped past capacity
  size_t completed_head_ = 0;    ///< ring start index within completed_
};

/// The innermost ScopedTracer on this thread, or nullptr (the default).
QueryTracer* CurrentTracerOrNull();

/// RAII install, mirroring ScopedKernel / ScopedGovernor.
class ScopedTracer {
 public:
  explicit ScopedTracer(QueryTracer& tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  QueryTracer* previous_;
};

namespace internal {
/// Number of ScopedTracer installs alive process-wide. Zero means every
/// span site reduces to this one relaxed load (the failpoint pattern).
extern std::atomic<int> g_active_tracers;
}  // namespace internal

/// The tracer span sites should record into, or nullptr on the fast path.
inline QueryTracer* ActiveTracerOrNull() {
  if (internal::g_active_tracers.load(std::memory_order_relaxed) == 0) {
    return nullptr;
  }
  return CurrentTracerOrNull();
}

/// RAII span guard for instrumentation sites. Does nothing (beyond the
/// atomic load) when no tracer is installed. The `name` argument is only
/// evaluated lazily by callers that pass a literal; callers that build a
/// name dynamically should gate on ActiveTracerOrNull() themselves.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : tracer_(ActiveTracerOrNull()) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a counter to this span (no-op when disabled).
  void Counter(const char* name, uint64_t value) {
    if (tracer_ != nullptr) tracer_->Counter(name, value);
  }
  bool active() const { return tracer_ != nullptr; }

 private:
  QueryTracer* tracer_;
  uint64_t id_ = 0;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_TRACE_H_
