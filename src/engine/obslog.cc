#include "engine/obslog.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

namespace lcdb {

namespace {

thread_local QueryFlightRecorder* t_current_flight_recorder = nullptr;

/// Minimal JSON string escaper, matching metrics.cc's conventions: quotes
/// and backslashes escaped, other control characters blanked (query text
/// and status messages are ASCII by construction elsewhere; newlines in
/// span trees must survive, so they escape properly).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendField(std::string& out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += "\"";
}

}  // namespace

FailureClass ClassifyFailure(const Status& status) {
  if (status.ok()) return FailureClass::kNone;
  switch (status.code()) {
    case StatusCode::kCancelled:
      return FailureClass::kCancelled;
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return FailureClass::kResource;
    case StatusCode::kInternal:
    case StatusCode::kUnsupported:
      return FailureClass::kFault;
    default:
      // Parse, type and argument errors: the input is wrong, not the run.
      return FailureClass::kInvalid;
  }
}

const char* FailureClassName(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kInvalid:
      return "invalid";
    case FailureClass::kResource:
      return "resource";
    case FailureClass::kCancelled:
      return "cancelled";
    case FailureClass::kFault:
      return "fault";
  }
  return "unknown";
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

uint64_t ObsNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string QueryRecord::ToJson() const {
  std::string out = "{\"schema\":\"lcdb.query_record.v1\"";
  bool first = false;
  AppendField(out, "seq", sequence, &first);
  AppendField(out, "query_hash", query_hash, &first);
  AppendField(out, "backend", backend, &first);
  AppendField(out, "plan_fingerprint", plan_fingerprint, &first);
  out += ",\"phase_ns\":{";
  bool pf = true;
  AppendField(out, "typecheck", typecheck_ns, &pf);
  AppendField(out, "analyze", analyze_ns, &pf);
  AppendField(out, "plan_build", plan_build_ns, &pf);
  AppendField(out, "plan_optimize", plan_optimize_ns, &pf);
  AppendField(out, "execute", execute_ns, &pf);
  AppendField(out, "total", total_ns, &pf);
  out += "},\"governor\":{";
  bool gf = true;
  AppendField(out, "checkpoints", governor_checkpoints, &gf);
  AppendField(out, "budget_trips", governor_budget_trips, &gf);
  AppendField(out, "tripped_budget", tripped_budget, &gf);
  out += "},\"cache\":{";
  bool cf = true;
  AppendField(out, "kernel_hits", kernel_cache_hits, &cf);
  AppendField(out, "kernel_misses", kernel_cache_misses, &cf);
  AppendField(out, "lemma_hits", lemma_hits, &cf);
  AppendField(out, "lemma_misses", lemma_misses, &cf);
  out += "}";
  AppendField(out, "outcome", outcome, &first);
  AppendField(out, "status", status_code, &first);
  AppendField(out, "resume_token", resume_token, &first);
  AppendField(out, "retries", retries, &first);
  AppendField(out, "resumes", resumes, &first);
  out += ",\"sampled\":";
  out += sampled ? "true" : "false";
  out += "}";
  return out;
}

QueryFlightRecorder::QueryFlightRecorder(Options options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

uint64_t QueryFlightRecorder::Append(QueryRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.sequence = ++appended_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
  return appended_;
}

void QueryFlightRecorder::AnnotateLast(uint64_t retries, uint64_t resumes,
                                       const std::string& outcome,
                                       bool sampled) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return;
  QueryRecord& last =
      ring_[(head_ + ring_.size() - 1) % ring_.size()];
  last.retries = retries;
  last.resumes = resumes;
  last.outcome = outcome;
  last.sampled = sampled;
}

size_t QueryFlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t QueryFlightRecorder::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

uint64_t QueryFlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<QueryRecord> QueryFlightRecorder::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t take = n < ring_.size() ? n : ring_.size();
  std::vector<QueryRecord> out;
  out.reserve(take);
  for (size_t i = ring_.size() - take; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string QueryFlightRecorder::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out += ring_[(head_ + i) % ring_.size()].ToJson();
    out += "\n";
  }
  return out;
}

QueryFlightRecorder* CurrentFlightRecorderOrNull() {
  return t_current_flight_recorder;
}

ScopedFlightRecorder::ScopedFlightRecorder(QueryFlightRecorder& recorder)
    : previous_(t_current_flight_recorder) {
  t_current_flight_recorder = &recorder;
  internal::g_active_flight_recorders.fetch_add(1,
                                                std::memory_order_relaxed);
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  t_current_flight_recorder = previous_;
  internal::g_active_flight_recorders.fetch_sub(1,
                                                std::memory_order_relaxed);
}

namespace internal {
std::atomic<int> g_active_flight_recorders{0};
}  // namespace internal

std::string PostmortemBundle::ToJson() const {
  std::string out = "{\"schema\":\"lcdb.postmortem.v1\"";
  bool first = false;
  AppendField(out, "query_hash", query_hash, &first);
  AppendField(out, "query", query_text, &first);
  AppendField(out, "status", status_code, &first);
  AppendField(out, "message", status_message, &first);
  AppendField(out, "failure_class", failure_class, &first);
  AppendField(out, "resume_token", resume_token, &first);
  AppendField(out, "attempts", attempts, &first);
  AppendField(out, "retries", retries, &first);
  AppendField(out, "resumes", resumes, &first);
  out += ",\"ladder\":[";
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(ladder[i]) + "\"";
  }
  out += "]";
  AppendField(out, "trace", span_tree, &first);
  // The metrics delta is already flat JSON; splice it in verbatim.
  out += ",\"metrics\":";
  out += metrics_json.empty() ? "{}" : metrics_json;
  out += ",\"flight_tail\":[";
  for (size_t i = 0; i < flight_tail.size(); ++i) {
    if (i > 0) out += ",";
    out += flight_tail[i].ToJson();
  }
  out += "]}";
  return out;
}

PostmortemWriter::PostmortemWriter(Options options)
    : options_(std::move(options)) {
  if (options_.max_bundles == 0) options_.max_bundles = 1;
}

Result<std::string> PostmortemWriter::Write(const PostmortemBundle& bundle) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return Status::Internal("cannot create postmortem directory '" +
                            options_.directory + "': " + ec.message());
  }
  const uint64_t slot = written_ % options_.max_bundles;
  std::string name = "postmortem-" + std::to_string(slot) + ".json";
  // Zero-pad to 4 digits so directory listings sort by slot.
  while (name.size() < std::string("postmortem-0000.json").size()) {
    name.insert(std::string("postmortem-").size(), "0");
  }
  const std::string path =
      (fs::path(options_.directory) / name).string();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open postmortem bundle '" + path + "'");
  }
  out << bundle.ToJson() << "\n";
  out.close();
  if (!out) {
    return Status::Internal("short write on postmortem bundle '" + path +
                            "'");
  }
  ++written_;
  last_path_ = path;
  return path;
}

}  // namespace lcdb
