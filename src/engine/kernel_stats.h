#ifndef LCDB_ENGINE_KERNEL_STATS_H_
#define LCDB_ENGINE_KERNEL_STATS_H_

#include <cstdint>
#include <string>

namespace lcdb {

/// Telemetry of a constraint kernel (engine/kernel.h). The paper's PTIME
/// data-complexity results (Theorems 4.3 and 6.1) are bounds on the number
/// of oracle decisions an evaluation makes; these counters make that number
/// a first-class measured quantity. All counters are cumulative since
/// construction or the last ResetStats().
struct KernelStats {
  /// Feasibility questions asked of the kernel (cache hits included).
  uint64_t feasibility_queries = 0;
  /// Implication / consistency-with-negation questions asked.
  uint64_t implication_queries = 0;
  /// Questions answered by canonicalization alone (syntactically false or
  /// empty systems, constant atoms) — no cache lookup, no LP.
  uint64_t trivial_answers = 0;
  /// Underlying LP oracle invocations (the cache misses that paid).
  uint64_t oracle_calls = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t implication_cache_hits = 0;
  uint64_t implication_cache_misses = 0;
  /// Lookups that found entries with the same 64-bit hash but a different
  /// canonical encoding (resolved exactly by the encoding comparison).
  uint64_t canonicalization_collisions = 0;
  /// Entries dropped by the LRU bound.
  uint64_t cache_evictions = 0;
  /// MaximizeLp calls and tableau pivots spent on this kernel's oracle
  /// calls (deltas of the process-wide simplex counters).
  uint64_t simplex_invocations = 0;
  uint64_t simplex_pivots = 0;

  /// Lemma-database family (engine/lemma_db.h) — populated when the kernel
  /// delegates its caches to an activity-managed lemma store, all zero
  /// under the legacy LRU backend. Hits/misses count lemma lookups (the
  /// union of the feasibility and implication keyspaces); evictions are
  /// split by the quality tier of the dropped lemma; invalidations count
  /// lemmas dropped through per-disjunct occurrence lists.
  uint64_t lemma_hits = 0;
  uint64_t lemma_misses = 0;
  uint64_t lemma_insertions = 0;
  uint64_t lemma_evictions_core = 0;
  uint64_t lemma_evictions_frequent = 0;
  uint64_t lemma_evictions_transient = 0;
  uint64_t lemma_invalidations = 0;
  uint64_t lemma_decays = 0;
  /// Gauge, not a counter: live lemmas at snapshot time. Difference and
  /// accumulation both keep the most recent value.
  uint64_t lemma_occupancy = 0;

  KernelStats& operator+=(const KernelStats& o) {
    feasibility_queries += o.feasibility_queries;
    implication_queries += o.implication_queries;
    trivial_answers += o.trivial_answers;
    oracle_calls += o.oracle_calls;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    implication_cache_hits += o.implication_cache_hits;
    implication_cache_misses += o.implication_cache_misses;
    canonicalization_collisions += o.canonicalization_collisions;
    cache_evictions += o.cache_evictions;
    simplex_invocations += o.simplex_invocations;
    simplex_pivots += o.simplex_pivots;
    lemma_hits += o.lemma_hits;
    lemma_misses += o.lemma_misses;
    lemma_insertions += o.lemma_insertions;
    lemma_evictions_core += o.lemma_evictions_core;
    lemma_evictions_frequent += o.lemma_evictions_frequent;
    lemma_evictions_transient += o.lemma_evictions_transient;
    lemma_invalidations += o.lemma_invalidations;
    lemma_decays += o.lemma_decays;
    lemma_occupancy = o.lemma_occupancy;  // gauge: latest wins
    return *this;
  }

  /// Counter-wise difference (for before/after snapshots).
  KernelStats operator-(const KernelStats& o) const {
    KernelStats d = *this;
    d.feasibility_queries -= o.feasibility_queries;
    d.implication_queries -= o.implication_queries;
    d.trivial_answers -= o.trivial_answers;
    d.oracle_calls -= o.oracle_calls;
    d.cache_hits -= o.cache_hits;
    d.cache_misses -= o.cache_misses;
    d.implication_cache_hits -= o.implication_cache_hits;
    d.implication_cache_misses -= o.implication_cache_misses;
    d.canonicalization_collisions -= o.canonicalization_collisions;
    d.cache_evictions -= o.cache_evictions;
    d.simplex_invocations -= o.simplex_invocations;
    d.simplex_pivots -= o.simplex_pivots;
    d.lemma_hits -= o.lemma_hits;
    d.lemma_misses -= o.lemma_misses;
    d.lemma_insertions -= o.lemma_insertions;
    d.lemma_evictions_core -= o.lemma_evictions_core;
    d.lemma_evictions_frequent -= o.lemma_evictions_frequent;
    d.lemma_evictions_transient -= o.lemma_evictions_transient;
    d.lemma_invalidations -= o.lemma_invalidations;
    d.lemma_decays -= o.lemma_decays;
    // d.lemma_occupancy stays *this's value (gauge semantics).
    return d;
  }

  std::string ToString() const {
    std::string out = "oracle_calls=" + std::to_string(oracle_calls);
    out += " feasibility_queries=" + std::to_string(feasibility_queries);
    out += " implication_queries=" + std::to_string(implication_queries);
    out += " cache_hits=" + std::to_string(cache_hits);
    out += " cache_misses=" + std::to_string(cache_misses);
    out += " impl_hits=" + std::to_string(implication_cache_hits);
    out += " impl_misses=" + std::to_string(implication_cache_misses);
    out += " trivial=" + std::to_string(trivial_answers);
    out += " collisions=" + std::to_string(canonicalization_collisions);
    out += " evictions=" + std::to_string(cache_evictions);
    out += " simplex_invocations=" + std::to_string(simplex_invocations);
    out += " simplex_pivots=" + std::to_string(simplex_pivots);
    out += " lemma_hits=" + std::to_string(lemma_hits);
    out += " lemma_evictions=" +
           std::to_string(lemma_evictions_core + lemma_evictions_frequent +
                          lemma_evictions_transient);
    out += " lemma_invalidations=" + std::to_string(lemma_invalidations);
    return out;
  }
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_KERNEL_STATS_H_
