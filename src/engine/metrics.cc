#include "engine/metrics.h"

#include <algorithm>

namespace lcdb {

namespace {

size_t Log2Bucket(uint64_t value) {
  size_t bucket = 0;
  while (value > 0 && bucket + 1 < MetricsRegistry::kHistogramBuckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // metric names/labels are ASCII; control chars blanked
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void MetricsRegistry::Count(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::Gauge(const std::string& name, uint64_t value) {
  gauges_[name] = value;
}

void MetricsRegistry::Label(const std::string& name, std::string value) {
  labels_[name] = std::move(value);
}

void MetricsRegistry::Observe(const std::string& name, uint64_t value) {
  auto& h = histograms_[name];
  if (h.buckets.empty()) h.buckets.assign(kHistogramBuckets, 0);
  ++h.buckets[Log2Bucket(value)];
  ++h.count;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  out.values = counters_;
  for (const auto& [name, value] : gauges_) out.values[name] = value;
  out.labels = labels_;
  out.histograms = histograms_;
  return out;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  labels_.clear();
  histograms_.clear();
}

void MetricsRegistry::RegisterKernelStats(const KernelStats& s) {
  Count("kernel.feasibility_queries", s.feasibility_queries);
  Count("kernel.implication_queries", s.implication_queries);
  Count("kernel.trivial_answers", s.trivial_answers);
  Count("kernel.oracle_calls", s.oracle_calls);
  Count("kernel.cache_hits", s.cache_hits);
  Count("kernel.cache_misses", s.cache_misses);
  Count("kernel.implication_cache_hits", s.implication_cache_hits);
  Count("kernel.implication_cache_misses", s.implication_cache_misses);
  Count("kernel.canonicalization_collisions", s.canonicalization_collisions);
  Count("kernel.cache_evictions", s.cache_evictions);
  Count("kernel.simplex_invocations", s.simplex_invocations);
  Count("kernel.simplex_pivots", s.simplex_pivots);
  Count("kernel.lemma.hits", s.lemma_hits);
  Count("kernel.lemma.misses", s.lemma_misses);
  Count("kernel.lemma.insertions", s.lemma_insertions);
  Count("kernel.lemma.evictions.core", s.lemma_evictions_core);
  Count("kernel.lemma.evictions.frequent", s.lemma_evictions_frequent);
  Count("kernel.lemma.evictions.transient", s.lemma_evictions_transient);
  Count("kernel.lemma.invalidations", s.lemma_invalidations);
  Count("kernel.lemma.decays", s.lemma_decays);
  Gauge("kernel.lemma.occupancy", s.lemma_occupancy);
}

void MetricsRegistry::RegisterGovernorStats(const GovernorStats& s) {
  Count("governor.checkpoints", s.checkpoints);
  Count("governor.deadline_checks", s.deadline_checks);
  Count("governor.budget_trips", s.budget_trips);
  if (!s.tripped_budget.empty()) {
    Label("governor.tripped_budget", s.tripped_budget);
  }
}

void MetricsRegistry::RegisterPlanPassStats(const PlanPassStats& s) {
  Gauge("plan.plan_nodes", s.plan_nodes);
  Count("plan.folded_constants", s.folded_constants);
  Count("plan.pruned_branches", s.pruned_branches);
  Count("plan.narrowed_subtrees", s.narrowed_subtrees);
  Count("plan.reordered_quantifiers", s.reordered_quantifiers);
  Count("plan.hoisted_invariants", s.hoisted_invariants);
  Count("plan.reordered_conjuncts", s.reordered_conjuncts);
  Count("plan.cse_merged", s.cse_merged);
  Count("plan.cacheable_marked", s.cacheable_marked);
}

void MetricsRegistry::RegisterAnalysisStats(const AnalysisStats& s) {
  Count("analysis.queries_analyzed", s.queries_analyzed);
  Count("analysis.diagnostics", s.diagnostics);
  Count("analysis.errors", s.errors);
  Count("analysis.warnings", s.warnings);
  Count("analysis.notes", s.notes);
  Count("analysis.guards_classified", s.guards_classified);
  Count("analysis.guards_proved_unsat", s.guards_proved_unsat);
  Count("analysis.guards_proved_tautology", s.guards_proved_tautology);
  Count("analysis.guards_skipped_size", s.guards_skipped_size);
}

void MetricsRegistry::RegisterVerifyStats(const VerifyStats& s) {
  Count("analysis.verify.plans", s.plans_verified);
  Count("analysis.verify.plan_nodes", s.plan_nodes_verified);
  Count("analysis.verify.programs", s.programs_verified);
  Count("analysis.verify.procs", s.procs_verified);
  Count("analysis.verify.instructions", s.instructions_verified);
  Count("analysis.verify.loops", s.loops_verified);
  Count("analysis.verify.violations", s.violations);
  Count("analysis.verify.unreachable_procs", s.unreachable_procs);
  Count("analysis.verify.dead_caches_proved", s.dead_caches_proved);
}

void MetricsRegistry::RegisterOpTimings(const OpTimings& timings) {
  for (const auto& [op, timing] : timings) {
    Count("op." + op + ".count", timing.count);
    Count("op." + op + ".total_ns", timing.total_ns);
    if (timing.memo_hits > 0) {
      Count("op." + op + ".memo_hits", timing.memo_hits);
    }
  }
}

void MetricsRegistry::RegisterVmStats(const VmStats& s) {
  Count("vm.instructions", s.instructions);
  Count("vm.icache_hits", s.icache_hits);
  Count("vm.icache_misses", s.icache_misses);
  Count("vm.icache_invalidations", s.icache_invalidations);
  Count("vm.icache_bypasses", s.icache_bypasses);
  Gauge("vm.procs", s.procs);
  Gauge("vm.code_instructions", s.code_instructions);
}

void MetricsRegistry::RegisterPlanCostStats(const PlanCostStats& s) {
  Gauge("plan.cost.nodes", s.nodes);
  Gauge("plan.cost.total_bigint_ops", s.total_bigint_ops);
  Gauge("plan.cost.est_answer_rows", s.est_answer_rows);
  Gauge("plan.cost.dead_caches", s.dead_caches);
  Gauge("plan.cost.warnings", s.warnings);
}

uint64_t MetricsSnapshot::HistogramValue::Percentile(double q) const {
  if (count == 0) return 0;
  if (q <= 0) q = 0;
  if (q > 1) q = 1;
  // 1-based rank of the target observation: ceil(q * count), clamped.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (cumulative + buckets[i] < rank) {
      cumulative += buckets[i];
      continue;
    }
    // Bucket 0 holds exactly the value 0; bucket i >= 1 holds values in
    // [2^(i-1), 2^i). The overflow bucket (kHistogramBuckets-1) is open
    // above but extrapolates to twice its lower bound — the same 2^i
    // upper edge, so one formula serves all buckets.
    if (i == 0) return 0;
    const uint64_t lo = uint64_t{1} << (i - 1);
    const uint64_t hi = uint64_t{1} << i;
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(buckets[i]);
    return lo + static_cast<uint64_t>(fraction *
                                      static_cast<double>(hi - lo));
  }
  return 0;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : values) {
    auto it = before.values.find(name);
    const uint64_t prior = it == before.values.end() ? 0 : it->second;
    out.values[name] = value >= prior ? value - prior : 0;
  }
  out.labels = labels;
  for (const auto& [name, h] : histograms) {
    HistogramValue d = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      const HistogramValue& p = it->second;
      for (size_t i = 0; i < d.buckets.size() && i < p.buckets.size(); ++i) {
        d.buckets[i] -= std::min(d.buckets[i], p.buckets[i]);
      }
      d.count -= std::min(d.count, p.count);
      d.sum -= std::min(d.sum, p.sum);
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

MetricsSnapshot& MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.values) values[name] += value;
  for (const auto& [name, value] : other.labels) labels[name] = value;
  for (const auto& [name, h] : other.histograms) {
    HistogramValue& mine = histograms[name];
    if (mine.buckets.size() < h.buckets.size()) {
      mine.buckets.resize(h.buckets.size(), 0);
    }
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
  return *this;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, value] : values) {
    sep();
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  for (const auto& [name, value] : labels) {
    sep();
    out += "\"" + JsonEscape(name) + "\":\"" + JsonEscape(value) + "\"";
  }
  for (const auto& [name, h] : histograms) {
    sep();
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"buckets\":[";
    // Trailing zero buckets are elided to keep the flat JSON small.
    size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (size_t i = 0; i < last; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    // Percentile estimates ride after the buckets so the prefix schema
    // stays what it always was (tests pin the count/sum/buckets head).
    out += "],\"p50\":" + std::to_string(h.Percentile(0.50)) +
           ",\"p90\":" + std::to_string(h.Percentile(0.90)) +
           ",\"p99\":" + std::to_string(h.Percentile(0.99)) + "}";
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : values) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : labels) {
    out += name + "=" + value + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name + ".count=" + std::to_string(h.count) + "\n";
    out += name + ".sum=" + std::to_string(h.sum) + "\n";
    out += name + ".p50=" + std::to_string(h.Percentile(0.50)) + "\n";
    out += name + ".p90=" + std::to_string(h.Percentile(0.90)) + "\n";
    out += name + ".p99=" + std::to_string(h.Percentile(0.99)) + "\n";
  }
  return out;
}

}  // namespace lcdb
