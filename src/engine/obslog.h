#ifndef LCDB_ENGINE_OBSLOG_H_
#define LCDB_ENGINE_OBSLOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace lcdb {

/// Classification of a failed attempt, driving QuerySession's retry policy
/// and naming the outcome in every flight-recorder record. Built on
/// Status::IsResourceFailure with cancellation split out: a cancel is the
/// *caller* changing its mind, so retrying it would be insubordinate, while
/// budget and deadline trips are failures of the attempt's resource
/// envelope and retry cleanly with a bigger one.
enum class FailureClass {
  kNone,       ///< the attempt succeeded
  kInvalid,    ///< bad input (parse/type/argument): no retry can help
  kResource,   ///< budget or deadline trip: escalate + resume and retry
  kCancelled,  ///< external cancel: never retried, never quarantined
  kFault,      ///< internal/unsupported: engine fault; retry a rung lower
};

FailureClass ClassifyFailure(const Status& status);
const char* FailureClassName(FailureClass c);

/// Stable lower_snake name of a StatusCode ("ok", "resource_exhausted",
/// ...), the spelling the query-record and post-mortem JSON schemas pin.
const char* StatusCodeName(StatusCode code);

/// Monotonic nanoseconds (steady_clock) for phase timing. One shared
/// epoch-free reading; only differences are meaningful.
uint64_t ObsNowNs();

/// One structured record of one evaluated query — the unit of the flight
/// recorder. Everything is plain data so records survive the query (and the
/// evaluator) that produced them; serialized as one schema-stable JSONL
/// line (`lcdb.query_record.v1`).
struct QueryRecord {
  uint64_t sequence = 0;    ///< assigned by QueryFlightRecorder::Append
  uint64_t query_hash = 0;  ///< StableHash64 of the query source text
  std::string backend;      ///< "vm" | "tree" | "legacy"
  uint64_t plan_fingerprint = 0;  ///< StableHash64 of the printed plan

  // Per-phase wall-clock, nanoseconds. Phases mirror the tracer's span
  // names; zero means the phase did not run (e.g. plan.* under the legacy
  // walk, execute after an analysis rejection).
  uint64_t typecheck_ns = 0;
  uint64_t analyze_ns = 0;
  uint64_t plan_build_ns = 0;
  uint64_t plan_optimize_ns = 0;  ///< optimizer passes + tier-2 cost pass
  uint64_t execute_ns = 0;        ///< plan.execute or the legacy walk
  uint64_t total_ns = 0;

  // Governor consumption of the attempt (zeros when ungoverned).
  uint64_t governor_checkpoints = 0;
  uint64_t governor_budget_trips = 0;
  std::string tripped_budget;  ///< "" unless a budget tripped

  // Kernel cache outcomes of the attempt; hit *rates* are left to
  // consumers so records stay integral and mergeable.
  uint64_t kernel_cache_hits = 0;
  uint64_t kernel_cache_misses = 0;
  uint64_t lemma_hits = 0;
  uint64_t lemma_misses = 0;

  // Outcome.
  std::string outcome = "none";   ///< FailureClassName of the final status
  std::string status_code = "ok";  ///< StatusCodeName of the final status
  uint64_t resume_token = 0;  ///< checkpoint carried by a resource failure

  // Session context, annotated by QuerySession after the ladder finishes;
  // zeros for bare Evaluator use.
  uint64_t retries = 0;
  uint64_t resumes = 0;
  bool sampled = false;  ///< the continuous profiler traced this query

  /// One JSONL line, schema `lcdb.query_record.v1` (validated in CI).
  std::string ToJson() const;
};

/// The query flight recorder: a bounded, mutex-guarded ring of the most
/// recent QueryRecords. Install with ScopedFlightRecorder; the Evaluator
/// appends one record per Evaluate call automatically, and QuerySession
/// annotates the final attempt's record with ladder context. The disabled
/// path (no recorder installed process-wide) costs one relaxed atomic load
/// per query, the failpoint/tracer contract.
///
/// Unlike the tracer, one recorder deliberately serves *many* queries (and,
/// behind a mutex, many threads): it is the cross-query telemetry surface
/// the ROADMAP's `lcdbd` daemon tails.
class QueryFlightRecorder {
 public:
  struct Options {
    /// Ring bound on retained records; older records are dropped (counted).
    size_t capacity = 256;
  };

  QueryFlightRecorder() : QueryFlightRecorder(Options{}) {}
  explicit QueryFlightRecorder(Options options);

  QueryFlightRecorder(const QueryFlightRecorder&) = delete;
  QueryFlightRecorder& operator=(const QueryFlightRecorder&) = delete;

  /// Appends one record, assigning and returning its sequence number
  /// (1-based, monotone across drops).
  uint64_t Append(QueryRecord record);

  /// Rewrites session-level fields of the most recently appended record —
  /// QuerySession's hook: retries/resumes/final outcome are only known
  /// after the ladder finished, i.e. after the last attempt appended.
  /// No-op on an empty ring.
  void AnnotateLast(uint64_t retries, uint64_t resumes,
                    const std::string& outcome, bool sampled);

  size_t size() const;
  uint64_t appended() const;  ///< records ever appended
  uint64_t dropped() const;   ///< records evicted by the ring bound

  /// The most recent min(n, size) records, oldest first.
  std::vector<QueryRecord> Tail(size_t n) const;

  /// Every retained record as JSONL, oldest first (`lcdbq --query-log`).
  std::string ToJsonl() const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::vector<QueryRecord> ring_;  ///< ring; start index is head_
  size_t head_ = 0;
  uint64_t appended_ = 0;
  uint64_t dropped_ = 0;
};

/// The innermost ScopedFlightRecorder on this thread, or nullptr.
QueryFlightRecorder* CurrentFlightRecorderOrNull();

/// RAII install, mirroring ScopedTracer / ScopedKernel.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(QueryFlightRecorder& recorder);
  ~ScopedFlightRecorder();

  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  QueryFlightRecorder* previous_;
};

namespace internal {
/// Number of ScopedFlightRecorder installs alive process-wide. Zero means
/// every record site reduces to one relaxed load (the failpoint pattern).
extern std::atomic<int> g_active_flight_recorders;
}  // namespace internal

/// The recorder Evaluate should append to, or nullptr on the fast path.
inline QueryFlightRecorder* ActiveFlightRecorderOrNull() {
  if (internal::g_active_flight_recorders.load(std::memory_order_relaxed) ==
      0) {
    return nullptr;
  }
  return CurrentFlightRecorderOrNull();
}

/// Everything needed to diagnose one failed query after the fact, bundled
/// as a single JSON document (`lcdb.postmortem.v1`): the failing status and
/// its classification, the session ladder's history, the resume-token
/// state, the last attempt's span tree, the metrics delta of the call and
/// the flight recorder's tail for cross-query context.
struct PostmortemBundle {
  uint64_t query_hash = 0;
  std::string query_text;
  std::string status_code;     ///< StatusCodeName
  std::string status_message;
  std::string failure_class;   ///< FailureClassName
  uint64_t resume_token = 0;   ///< outstanding checkpoint, 0 if none
  uint64_t attempts = 0;       ///< evaluator runs this call
  uint64_t retries = 0;
  uint64_t resumes = 0;
  std::vector<std::string> ladder;  ///< rungs dropped, "rung@attempt"
  std::string span_tree;     ///< QueryTracer::ToTreeString, "" if untraced
  std::string metrics_json;  ///< flat metrics JSON of the call, "{}" if none
  std::vector<QueryRecord> flight_tail;  ///< recorder tail at failure time

  std::string ToJson() const;
};

/// Serializes post-mortem bundles into a directory as a bounded ring of
/// `postmortem-<slot>.json` files (slot = sequence % max_bundles), so a
/// chaos run cannot fill the disk. The directory is created on first write.
class PostmortemWriter {
 public:
  struct Options {
    std::string directory;
    size_t max_bundles = 256;
  };

  explicit PostmortemWriter(Options options);

  /// Writes one bundle; returns the path written.
  Result<std::string> Write(const PostmortemBundle& bundle);

  uint64_t written() const { return written_; }
  const std::string& last_path() const { return last_path_; }

 private:
  Options options_;
  uint64_t written_ = 0;
  std::string last_path_;
};

}  // namespace lcdb

#endif  // LCDB_ENGINE_OBSLOG_H_
