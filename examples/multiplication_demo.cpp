// Figure 5 of the paper: why region quantification must be restricted to
// regions of the *input* relation. If the language could quantify over the
// regions (convex hulls) of arbitrary definable sets, multiplication would
// become definable and the language would lose closure and decidability:
//
//   x * y = z  iff  (x, y - 1) lies in conv{(0, y), (z, 0)}    (x,y,z > 0)
//
// This program computes that membership test exactly (with the library's
// own geometry) and verifies it recovers multiplication on a rational grid
// — demonstrating the danger the paper's design rules out.

#include <cstdio>

#include "geometry/generator_region.h"

namespace {

/// The Figure 5 test: (x, y-1) in conv{(0, y), (z, 0)}.
bool FigureFiveSaysProduct(const lcdb::Rational& x, const lcdb::Rational& y,
                           const lcdb::Rational& z) {
  lcdb::GeneratorRegion segment = lcdb::GeneratorRegion::ClosedSegment(
      {lcdb::Rational(0), y}, {z, lcdb::Rational(0)});
  return segment.Contains({x, y - lcdb::Rational(1)});
}

}  // namespace

int main() {
  std::printf("Figure 5: defining multiplication from convex closure.\n");
  std::printf("Checking (x, y-1) in conv{(0,y), (z,0)}  <=>  x*y = z\n\n");

  size_t checked = 0, mismatches = 0;
  // Rational grid of positive values; y > 1 so the witness row y-1 is
  // strictly between the segment endpoints.
  const int64_t nums[] = {1, 2, 3, 5, 7};
  const int64_t dens[] = {1, 2, 3};
  for (int64_t xn : nums) {
    for (int64_t xd : dens) {
      for (int64_t yn : nums) {
        for (int64_t yd : dens) {
          lcdb::Rational x(xn, xd);
          lcdb::Rational y = lcdb::Rational(yn, yd) + lcdb::Rational(1);
          lcdb::Rational product = x * y;
          // Exact product must be recognized...
          ++checked;
          if (!FigureFiveSaysProduct(x, y, product)) {
            ++mismatches;
            std::printf("MISS   %s * %s = %s\n", x.ToString().c_str(),
                        y.ToString().c_str(), product.ToString().c_str());
          }
          // ...and a perturbed value rejected.
          ++checked;
          if (FigureFiveSaysProduct(x, y, product + lcdb::Rational(1, 97))) {
            ++mismatches;
            std::printf("FALSE+ %s * %s != %s + 1/97\n", x.ToString().c_str(),
                        y.ToString().c_str(), product.ToString().c_str());
          }
        }
      }
    }
  }
  std::printf("grid checks: %zu, mismatches: %zu  ->  %s\n\n", checked,
              mismatches, mismatches == 0 ? "Figure 5 verified" : "BROKEN");
  std::printf(
      "Consequence (Section 4): quantifiers 'exists R in regions(psi)' over\n"
      "definable sets would make multiplication definable over (R, <, +),\n"
      "so lcdb's region sort is fixed to the decomposition of the INPUT\n"
      "relation only, exactly as in the paper.\n");
  return mismatches == 0 ? 0 : 1;
}
