// lcdbsh — a tiny interactive shell for linear constraint databases.
//
// Commands (one per line, also usable via piped stdin):
//   db <relation-header-formula>   e.g.  db S(x, y) : x >= 0 & y >= 0
//   load <path>                    load a database file (db/io.h format)
//   regions [arr|dec]              list the regions of the chosen extension
//   encode                         print the Theorem 6.4 encoding
//   query <text>                   evaluate a query (boolean or symbolic)
//   use arr|dec                    switch region extension
//   help, quit
//
// Example session:
//   db S(x) : (x > 0 & x < 1) | x = 5
//   regions
//   query exists x . (S(x) & x > 2)
//   query [lfp M R R' : (R = R' & subset(R)) | (exists Z . (M(R, Z) &
//         adj(Z, R') & subset(R')))](A, A)   -- needs bound A, use Conn

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "capture/encoding.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "util/strings.h"

namespace {

struct Session {
  std::optional<lcdb::ConstraintDatabase> db;
  std::unique_ptr<lcdb::RegionExtension> ext;
  bool use_decomposition = false;

  bool RebuildExtension() {
    if (!db.has_value()) {
      std::printf("no database loaded; use 'db' or 'load'\n");
      return false;
    }
    if (ext == nullptr) {
      ext = use_decomposition ? lcdb::MakeDecompositionExtension(*db)
                              : lcdb::MakeArrangementExtension(*db);
      std::printf("[%s extension: %zu regions]\n", ext->kind().c_str(),
                  ext->num_regions());
    }
    return true;
  }
};

void CmdDb(Session& session, const std::string& args) {
  // Syntax: NAME(v1, v2, ...) : formula
  size_t colon = args.find(':');
  if (colon == std::string::npos) {
    std::printf("usage: db S(x, y) : <formula>\n");
    return;
  }
  auto loaded = lcdb::LoadDatabaseFromString(
      "relation " + args.substr(0, colon) + "\nformula " +
      args.substr(colon + 1));
  if (!loaded.ok()) {
    std::printf("%s\n", loaded.status().ToString().c_str());
    return;
  }
  session.db = *loaded;
  session.ext.reset();
  std::printf("ok: %s\n", session.db->ToString().c_str());
}

void CmdLoad(Session& session, const std::string& path) {
  auto loaded = lcdb::LoadDatabaseFromFile(std::string(
      lcdb::StripWhitespace(path)));
  if (!loaded.ok()) {
    std::printf("%s\n", loaded.status().ToString().c_str());
    return;
  }
  session.db = *loaded;
  session.ext.reset();
  std::printf("ok: %s\n", session.db->ToString().c_str());
}

void CmdRegions(Session& session) {
  if (!session.RebuildExtension()) return;
  const lcdb::RegionExtension& ext = *session.ext;
  for (size_t r = 0; r < ext.num_regions(); ++r) {
    std::printf("  R%-3zu dim=%d %s%s  witness=%s  %s\n", r, ext.RegionDim(r),
                ext.RegionBounded(r) ? "bounded  " : "unbounded",
                ext.RegionSubsetOfS(r) ? " in-S " : "      ",
                lcdb::VecToString(ext.RegionWitness(r)).c_str(),
                ext.RegionFormula(r)
                    .ToString(ext.database().var_names())
                    .c_str());
  }
}

void CmdQuery(Session& session, const std::string& text) {
  if (!session.RebuildExtension()) return;
  auto answer = lcdb::EvaluateQueryText(*session.ext, text);
  if (!answer.ok()) {
    std::printf("%s\n", answer.status().ToString().c_str());
    return;
  }
  if (answer->free_vars.empty()) {
    std::printf("=> %s\n", answer->formula.IsEmpty() ? "false" : "true");
  } else {
    std::printf("=> %s\n", answer->ToString().c_str());
  }
}

}  // namespace

int main() {
  Session session;
  std::printf("lcdb shell — 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::string_view stripped = lcdb::StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::string cmd(stripped.substr(0, stripped.find(' ')));
    std::string rest(stripped.size() > cmd.size()
                         ? stripped.substr(cmd.size() + 1)
                         : std::string_view{});
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "  db S(x, y) : <formula>  define a database inline\n"
          "  load <path>             load a database file\n"
          "  use arr|dec             choose arrangement/decomposition\n"
          "  regions                 list regions of the extension\n"
          "  encode                  print the Theorem 6.4 word encoding\n"
          "  conn                    run the region connectivity query\n"
          "  query <text>            evaluate a query\n"
          "  quit\n");
    } else if (cmd == "db") {
      CmdDb(session, rest);
    } else if (cmd == "load") {
      CmdLoad(session, rest);
    } else if (cmd == "use") {
      session.use_decomposition = lcdb::StripWhitespace(rest) == "dec";
      session.ext.reset();
      std::printf("using %s extension\n",
                  session.use_decomposition ? "decomposition" : "arrangement");
    } else if (cmd == "regions") {
      CmdRegions(session);
    } else if (cmd == "encode") {
      if (session.RebuildExtension()) {
        std::printf("%s\n", lcdb::EncodeDatabase(*session.ext).c_str());
      }
    } else if (cmd == "conn") {
      CmdQuery(session, lcdb::RegionConnQueryText());
    } else if (cmd == "query") {
      CmdQuery(session, rest);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
