// lcdbsh — a tiny interactive shell for linear constraint databases.
//
// Commands (one per line, also usable via piped stdin):
//   db <relation-header-formula>   e.g.  db S(x, y) : x >= 0 & y >= 0
//   load <path>                    load a database file (db/io.h format)
//   regions [arr|dec]              list the regions of the chosen extension
//   encode                         print the Theorem 6.4 encoding
//   query <text>                   evaluate a query (boolean or symbolic)
//   lint <text>                    statically analyze a query: LCDB###
//                                  diagnostics with caret spans, no
//                                  evaluation (works without an extension)
//   explain <text>                 print the optimized plan (not executed)
//   explain analyze <text>         execute and print the plan annotated
//                                  with per-node timings, kernel hits, and
//                                  governor consumption
//   explain bytecode <text>        print the register-bytecode disassembly
//                                  of the optimized plan (not executed)
//   use arr|dec                    switch region extension
//   \set timeout <ms>              per-query wall-clock deadline (0 = off)
//   \set budget <name> <n>         per-query resource budget; <name> is one
//                                  of the GovernorLimits fields, <n> a count
//                                  or 'unlimited'
//   \set retries <n>               QuerySession retry budget per query
//   \set werror on|off             lint: promote analyzer warnings to
//                                  errors (CI-style gating)
//   \set sample <n>                continuous profiler: trace every nth
//                                  query (0 disables), folding sampled spans
//                                  into the profile.op.* histograms
//   \set failpoint SITE [skip]     arm a fault-injection site (util/
//                                  failpoint.h names); 'off' as SITE (or as
//                                  the argument) disarms
//   \show limits                   print the budgets in effect
//   \show cache                    print the kernel's lemma-database
//                                  occupancy, tier breakdown and hit rates
//   \show session                  print the QuerySession's resilience
//                                  telemetry: retry/resume/degradation
//                                  counters, the degradation log, quarantine
//   \show recent                   print the flight recorder's tail: one
//                                  line per recent query (backend, outcome,
//                                  per-phase time, retries)
//   \show profile                  print the continuous profiler's state:
//                                  sample counts and per-op latency
//                                  percentiles from the sampled traces
//   help, quit
//
// Every query runs through a persistent QuerySession (engine/session.h):
// budgets reset per attempt, resource trips retry with escalated budgets
// resuming from fixpoint checkpoints, and persistent faults walk the
// degradation ladder (vm->tree, lemma->lru, memoize->off, trace->off). A
// failure of any kind (parse error, type error, tripped budget, injected
// fault) prints a one-line diagnostic — naming the tripped budget when
// there is one — and the shell keeps going.
//
// Example session:
//   db S(x) : (x > 0 & x < 1) | x = 5
//   regions
//   query exists x . (S(x) & x > 2)
//   query [lfp M R R' : (R = R' & subset(R)) | (exists Z . (M(R, Z) &
//         adj(Z, R') & subset(R')))](A, A)   -- needs bound A, use Conn

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "capture/encoding.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/obslog.h"
#include "engine/profiler.h"
#include "engine/session.h"
#include "util/failpoint.h"
#include "util/interrupt.h"
#include "util/strings.h"

namespace {

struct Session {
  std::optional<lcdb::ConstraintDatabase> db;
  std::unique_ptr<lcdb::RegionExtension> ext;
  bool use_decomposition = false;
  lcdb::GovernorLimits limits;  // applied to every query via ScopedGovernor
  size_t retries = 2;           // QuerySession retry budget per query
  size_t sample_every = 0;      // profiler sampling period (0 = off)
  bool werror = false;          // lint: promote warnings to errors
  // Flight recorder behind `\show recent`; installed process-wide in main()
  // so it survives extension resets and QuerySession rebuilds.
  lcdb::QueryFlightRecorder recorder;
  // The persistent retry/resume/quarantine engine. Holds a reference to
  // *ext, so every path that resets the extension resets it first.
  std::unique_ptr<lcdb::QuerySession> qsession;

  void ResetExtension() {
    qsession.reset();
    ext.reset();
  }

  bool RebuildExtension() {
    if (!db.has_value()) {
      std::printf("no database loaded; use 'db' or 'load'\n");
      return false;
    }
    if (ext == nullptr) {
      // The Build* API turns a construction-time budget trip into a Status
      // (naming the tripped budget) instead of an escaping exception, so a
      // governed rebuild inside CmdQuery/CmdExplain fails cleanly.
      auto built = use_decomposition ? lcdb::BuildDecompositionExtension(*db)
                                     : lcdb::BuildArrangementExtension(*db);
      if (!built.ok()) {
        std::printf("!! extension build failed: %s\n",
                    built.status().ToString().c_str());
        return false;
      }
      ext = std::move(built).value();
      std::printf("[%s extension: %zu regions]\n", ext->kind().c_str(),
                  ext->num_regions());
    }
    return true;
  }

  /// The shell's QuerySession, built lazily against the current extension.
  /// Stats, quarantine and the degradation log accumulate across queries
  /// until the extension (or the retry budget) changes.
  lcdb::QuerySession* QueryEngine() {
    if (!RebuildExtension()) return nullptr;
    if (qsession == nullptr) {
      lcdb::SessionOptions options;
      options.limits = limits;
      options.max_retries = retries;
      options.profile.sample_every = sample_every;
      qsession = std::make_unique<lcdb::QuerySession>(*ext, options);
    }
    qsession->set_limits(limits);
    return qsession.get();
  }
};

void CmdDb(Session& session, const std::string& args) {
  // Syntax: NAME(v1, v2, ...) : formula
  size_t colon = args.find(':');
  if (colon == std::string::npos) {
    std::printf("usage: db S(x, y) : <formula>\n");
    return;
  }
  auto loaded = lcdb::LoadDatabaseFromString(
      "relation " + args.substr(0, colon) + "\nformula " +
      args.substr(colon + 1));
  if (!loaded.ok()) {
    std::printf("%s\n", loaded.status().ToString().c_str());
    return;
  }
  session.db = *loaded;
  session.ResetExtension();
  std::printf("ok: %s\n", session.db->ToString().c_str());
}

void CmdLoad(Session& session, const std::string& path) {
  auto loaded = lcdb::LoadDatabaseFromFile(std::string(
      lcdb::StripWhitespace(path)));
  if (!loaded.ok()) {
    std::printf("%s\n", loaded.status().ToString().c_str());
    return;
  }
  session.db = *loaded;
  session.ResetExtension();
  std::printf("ok: %s\n", session.db->ToString().c_str());
}

void CmdRegions(Session& session) {
  if (!session.RebuildExtension()) return;
  const lcdb::RegionExtension& ext = *session.ext;
  for (size_t r = 0; r < ext.num_regions(); ++r) {
    std::printf("  R%-3zu dim=%d %s%s  witness=%s  %s\n", r, ext.RegionDim(r),
                ext.RegionBounded(r) ? "bounded  " : "unbounded",
                ext.RegionSubsetOfS(r) ? " in-S " : "      ",
                lcdb::VecToString(ext.RegionWitness(r)).c_str(),
                ext.RegionFormula(r)
                    .ToString(ext.database().var_names())
                    .c_str());
  }
}

void CmdQuery(Session& session, const std::string& text) {
  // The extension build still runs under an outer governor (the session's
  // per-attempt governors only cover evaluation); budgets reset each query
  // so a tripped build does not poison the next one.
  lcdb::QueryGovernor governor(session.limits);
  lcdb::ScopedGovernor scoped(governor);
  lcdb::QuerySession* engine = session.QueryEngine();
  if (engine == nullptr) return;
  auto answer = engine->Evaluate(text);
  if (!answer.ok()) {
    const lcdb::MetricsSnapshot metrics = engine->Metrics();
    auto tripped = metrics.labels.find("governor.tripped_budget");
    if (answer.status().IsResourceFailure() &&
        tripped != metrics.labels.end()) {
      std::printf("!! query stopped [%s] %s\n", tripped->second.c_str(),
                  answer.status().ToString().c_str());
    } else {
      std::printf("!! %s\n", answer.status().ToString().c_str());
    }
    return;
  }
  if (answer->free_vars.empty()) {
    std::printf("=> %s\n", answer->formula.IsEmpty() ? "false" : "true");
  } else {
    std::printf("=> %s\n", answer->ToString().c_str());
  }
}

void CmdLint(Session& session, const std::string& text) {
  if (!session.db.has_value()) {
    std::printf("no database loaded; use 'db' or 'load'\n");
    return;
  }
  // Lint only needs the schema; when an extension is already built its
  // region count sharpens the tuple-space check (LCDB004).
  lcdb::AnalyzerOptions options;
  if (session.ext != nullptr) options.num_regions = session.ext->num_regions();
  lcdb::LintReport report = lcdb::LintQueryText(text, *session.db, options);
  if (session.werror) {
    // Mirror lcdbq --werror: the rendered severity and the summary line
    // agree with how a CI gate would exit.
    for (lcdb::Diagnostic& d : report.diagnostics) {
      if (d.severity == lcdb::DiagSeverity::kWarning) {
        d.severity = lcdb::DiagSeverity::kError;
        --report.stats.warnings;
        ++report.stats.errors;
      }
    }
  }
  std::printf("%s", lcdb::RenderDiagnostics(report.diagnostics, text).c_str());
  std::printf("lint: %s\n", report.stats.ToString().c_str());
}

/// explain <query> | explain analyze <query> | explain bytecode <query>
void CmdExplain(Session& session, const std::string& args) {
  std::string_view rest = lcdb::StripWhitespace(args);
  bool analyze = false;
  bool bytecode = false;
  if (rest.substr(0, 7) == "analyze" &&
      (rest.size() == 7 || rest[7] == ' ')) {
    analyze = true;
    rest = lcdb::StripWhitespace(rest.substr(7));
  } else if (rest.substr(0, 8) == "bytecode" &&
             (rest.size() == 8 || rest[8] == ' ')) {
    bytecode = true;
    rest = lcdb::StripWhitespace(rest.substr(8));
  }
  if (rest.empty()) {
    std::printf("usage: explain [analyze|bytecode] <query>\n");
    return;
  }
  // Same per-query governor discipline as CmdQuery: EXPLAIN ANALYZE runs
  // the query for real, so it consumes (and reports) real budgets.
  lcdb::QueryGovernor governor(session.limits);
  lcdb::ScopedGovernor scoped(governor);
  if (!session.RebuildExtension()) return;
  auto parsed =
      lcdb::ParseQuery(std::string(rest), session.db->relation_name());
  if (!parsed.ok()) {
    std::printf("!! %s\n", parsed.status().ToString().c_str());
    return;
  }
  lcdb::Evaluator evaluator(*session.ext);
  auto text = bytecode  ? evaluator.ExplainBytecode(**parsed)
              : analyze ? evaluator.ExplainAnalyze(**parsed)
                        : evaluator.Explain(**parsed);
  if (!text.ok()) {
    const lcdb::GovernorStats gstats = governor.stats();
    if (text.status().IsResourceFailure() && !gstats.tripped_budget.empty()) {
      std::printf("!! query stopped [%s] %s\n", gstats.tripped_budget.c_str(),
                  text.status().ToString().c_str());
    } else {
      std::printf("!! %s\n", text.status().ToString().c_str());
    }
    return;
  }
  std::printf("%s", text->c_str());
}

void CmdShowSession(const Session& session) {
  if (session.qsession == nullptr) {
    std::printf("  no session yet — run a query first\n");
    return;
  }
  const lcdb::QuerySession& qs = *session.qsession;
  std::printf("  stats      %s\n", qs.stats().ToString().c_str());
  std::printf("  retries    %zu per query\n", session.retries);
  if (qs.degradation_log().empty()) {
    std::printf("  ladder     intact (no degradations)\n");
  } else {
    for (const lcdb::DegradationStep& step : qs.degradation_log()) {
      std::printf("  degraded   %s (attempt %zu)\n", step.rung.c_str(),
                  step.attempt);
    }
  }
  const lcdb::MetricsSnapshot metrics = qs.Metrics();
  auto last = metrics.labels.find("session.last_failure_class");
  std::printf("  last class %s\n",
              last != metrics.labels.end() ? last->second.c_str() : "none");
}

void CmdShowRecent(const Session& session) {
  if (session.recorder.appended() == 0) {
    std::printf("  flight recorder empty — run a query first\n");
    return;
  }
  std::printf("  seq   backend  outcome    status              total(us)"
              "  retries  sampled\n");
  for (const lcdb::QueryRecord& r : session.recorder.Tail(10)) {
    std::printf("  %-5llu %-8s %-10s %-19s %9llu  %-7llu %s\n",
                static_cast<unsigned long long>(r.sequence),
                r.backend.c_str(), r.outcome.c_str(), r.status_code.c_str(),
                static_cast<unsigned long long>(r.total_ns / 1000),
                static_cast<unsigned long long>(r.retries),
                r.sampled ? "yes" : "no");
  }
  std::printf("  [%llu appended, %llu dropped by the ring bound]\n",
              static_cast<unsigned long long>(session.recorder.appended()),
              static_cast<unsigned long long>(session.recorder.dropped()));
}

void CmdShowProfile(const Session& session) {
  const lcdb::ContinuousProfiler* prof =
      session.qsession ? session.qsession->profiler() : nullptr;
  if (prof == nullptr) {
    std::printf("  sampling off — enable with \\set sample <n>\n");
    return;
  }
  std::printf("  queries %llu   sampled %llu   traces retained %zu\n",
              static_cast<unsigned long long>(prof->queries_seen()),
              static_cast<unsigned long long>(prof->queries_sampled()),
              prof->retained().size());
  const lcdb::MetricsSnapshot metrics = prof->Metrics();
  for (const auto& [name, hist] : metrics.histograms) {
    if (hist.count == 0) continue;
    std::printf("  %-32s n=%-6llu p50=%lluus p90=%lluus p99=%lluus\n",
                name.c_str(), static_cast<unsigned long long>(hist.count),
                static_cast<unsigned long long>(hist.Percentile(0.5) / 1000),
                static_cast<unsigned long long>(hist.Percentile(0.9) / 1000),
                static_cast<unsigned long long>(hist.Percentile(0.99) / 1000));
  }
}

/// \set timeout <ms> | \set budget <name> <n|unlimited> |
/// \set retries <n> | \set sample <n> |
/// \set failpoint SITE [skip_hits|off] | \set failpoint off
void CmdSet(Session& session, const std::string& args) {
  std::istringstream in(args);
  std::string what;
  in >> what;
  auto parse_count = [&](uint64_t* out) {
    std::string value;
    if (!(in >> value)) return false;
    if (value == "unlimited" || value == "off") {
      *out = lcdb::GovernorLimits::kUnlimited;
      return true;
    }
    *out = std::strtoull(value.c_str(), nullptr, 10);
    return true;
  };
  if (what == "timeout") {
    uint64_t ms = 0;
    if (!parse_count(&ms)) {
      std::printf("usage: \\set timeout <ms>   (0 or 'off' disables)\n");
      return;
    }
    session.limits.wall_clock_ms =
        ms == 0 ? lcdb::GovernorLimits::kUnlimited : ms;
    std::printf("ok\n");
    return;
  }
  if (what == "werror") {
    std::string value;
    if (!(in >> value) || (value != "on" && value != "off")) {
      std::printf("usage: \\set werror on|off\n");
      return;
    }
    session.werror = value == "on";
    std::printf("ok\n");
    return;
  }
  if (what == "retries") {
    uint64_t n = 0;
    if (!parse_count(&n)) {
      std::printf("usage: \\set retries <n>\n");
      return;
    }
    session.retries = static_cast<size_t>(n);
    // The retry budget is baked into the QuerySession at construction;
    // rebuild it (stats reset too — the old ladder no longer applies).
    session.qsession.reset();
    std::printf("ok\n");
    return;
  }
  if (what == "sample") {
    uint64_t n = 0;
    if (!parse_count(&n)) {
      std::printf("usage: \\set sample <n>   (0 or 'off' disables)\n");
      return;
    }
    session.sample_every =
        n == lcdb::GovernorLimits::kUnlimited ? 0 : static_cast<size_t>(n);
    // Like retries, the sampling policy is baked in at construction.
    session.qsession.reset();
    std::printf("ok\n");
    return;
  }
  if (what == "failpoint") {
    std::string site;
    if (!(in >> site)) {
      std::printf(
          "usage: \\set failpoint SITE [skip_hits] | \\set failpoint off\n"
          "  sites: kernel.decide qe.project arrangement.split "
          "fixpoint.stage closure.build plan.execute\n");
      return;
    }
    if (site == "off") {
      lcdb::DisarmAllFailpoints();
      std::printf("ok: all failpoints disarmed\n");
      return;
    }
    std::string arg;
    if (in >> arg && arg == "off") {
      lcdb::DisarmFailpoint(site);
      std::printf("ok: %s disarmed\n", site.c_str());
      return;
    }
    const uint64_t skip =
        arg.empty() ? 0 : std::strtoull(arg.c_str(), nullptr, 10);
    lcdb::ArmFailpoint(site, lcdb::StatusCode::kResourceExhausted,
                       "injected failure (\\set failpoint " + site + ")",
                       skip);
    std::printf("ok: %s armed (skip %llu hits)\n", site.c_str(),
                static_cast<unsigned long long>(skip));
    return;
  }
  if (what == "budget") {
    std::string name;
    uint64_t value = 0;
    if (!(in >> name) || !parse_count(&value)) {
      std::printf("usage: \\set budget <name> <n|unlimited>\n");
      return;
    }
    lcdb::GovernorLimits& l = session.limits;
    if (name == "max_feasibility_queries") {
      l.max_feasibility_queries = value;
    } else if (name == "max_simplex_pivots") {
      l.max_simplex_pivots = value;
    } else if (name == "max_fixpoint_iterations") {
      l.max_fixpoint_iterations = value;
    } else if (name == "max_tuple_space") {
      l.max_tuple_space = value;
    } else if (name == "max_dnf_disjuncts") {
      l.max_dnf_disjuncts = value;
    } else if (name == "max_bigint_bits") {
      l.max_bigint_bits = value;
    } else {
      std::printf(
          "unknown budget '%s'; one of: max_feasibility_queries, "
          "max_simplex_pivots, max_fixpoint_iterations, max_tuple_space, "
          "max_dnf_disjuncts, max_bigint_bits\n",
          name.c_str());
      return;
    }
    std::printf("ok\n");
    return;
  }
  std::printf("usage: \\set timeout <ms> | \\set budget <name> <n>\n");
}

void CmdShowLimits(const Session& session) {
  const lcdb::GovernorLimits& l = session.limits;
  auto show = [](const char* name, uint64_t v) {
    if (v == lcdb::GovernorLimits::kUnlimited) {
      std::printf("  %-24s unlimited\n", name);
    } else {
      std::printf("  %-24s %llu\n", name, static_cast<unsigned long long>(v));
    }
  };
  show("timeout (ms)", l.wall_clock_ms);
  show("max_feasibility_queries", l.max_feasibility_queries);
  show("max_simplex_pivots", l.max_simplex_pivots);
  show("max_fixpoint_iterations", l.max_fixpoint_iterations);
  show("max_tuple_space", l.max_tuple_space);
  show("max_dnf_disjuncts", l.max_dnf_disjuncts);
  show("max_bigint_bits", l.max_bigint_bits);
}

void CmdShowCache() {
  lcdb::ConstraintKernel& kernel = lcdb::CurrentKernel();
  const std::shared_ptr<lcdb::LemmaDatabase>& db = kernel.lemma_db();
  if (db == nullptr) {
    std::printf("  lemma db                 off (%s backend)\n",
                kernel.options().memoize ? "LRU" : "memoize-off");
    return;
  }
  const std::array<size_t, 3> tiers = db->TierCounts();
  const lcdb::KernelStats s = kernel.stats();
  std::printf("  lemma db                 %llu / %llu entries\n",
              static_cast<unsigned long long>(db->size()),
              static_cast<unsigned long long>(db->capacity()));
  std::printf("  tiers (core/freq/trans)  %llu / %llu / %llu\n",
              static_cast<unsigned long long>(tiers[0]),
              static_cast<unsigned long long>(tiers[1]),
              static_cast<unsigned long long>(tiers[2]));
  auto rate = [](uint64_t hits, uint64_t misses) {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(total);
  };
  std::printf("  feasibility hit rate     %.1f%% (%llu/%llu)\n",
              rate(s.cache_hits, s.cache_misses),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_hits + s.cache_misses));
  std::printf("  implication hit rate     %.1f%% (%llu/%llu)\n",
              rate(s.implication_cache_hits, s.implication_cache_misses),
              static_cast<unsigned long long>(s.implication_cache_hits),
              static_cast<unsigned long long>(s.implication_cache_hits +
                                              s.implication_cache_misses));
  std::printf(
      "  evictions (c/f/t)        %llu / %llu / %llu   invalidations %llu\n",
      static_cast<unsigned long long>(s.lemma_evictions_core),
      static_cast<unsigned long long>(s.lemma_evictions_frequent),
      static_cast<unsigned long long>(s.lemma_evictions_transient),
      static_cast<unsigned long long>(s.lemma_invalidations));
}

}  // namespace

int main() {
  Session session;
  // Process-wide flight recorder: every Evaluate through the QuerySession
  // appends here, so `\show recent` works across extension resets.
  lcdb::ScopedFlightRecorder scoped_recorder(session.recorder);
  std::printf("lcdb shell — 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::string_view stripped = lcdb::StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::string cmd(stripped.substr(0, stripped.find(' ')));
    std::string rest(stripped.size() > cmd.size()
                         ? stripped.substr(cmd.size() + 1)
                         : std::string_view{});
    if (cmd == "quit" || cmd == "exit") break;
    // Last-resort net: no command may take the shell down. CmdQuery handles
    // its own failures with budget attribution; anything escaping another
    // command (e.g. an interrupt during an ungoverned extension build)
    // lands here as a one-line diagnostic.
    try {
      if (cmd == "help") {
        std::printf(
            "  db S(x, y) : <formula>  define a database inline\n"
            "  load <path>             load a database file\n"
            "  use arr|dec             choose arrangement/decomposition\n"
            "  regions                 list regions of the extension\n"
            "  encode                  print the Theorem 6.4 word encoding\n"
            "  conn                    run the region connectivity query\n"
            "  query <text>            evaluate a query\n"
            "  lint <text>             static analysis only (LCDB### codes)\n"
            "  explain <text>          print the optimized plan\n"
            "  explain analyze <text>  run the query, print measured plan\n"
            "  explain bytecode <text> print the plan's VM disassembly\n"
            "  \\set timeout <ms>       per-query deadline (0/'off' disables)\n"
            "  \\set budget <name> <n>  per-query resource budget\n"
            "  \\set retries <n>        session retry budget per query\n"
            "  \\set werror on|off      lint: promote warnings to errors\n"
            "  \\set sample <n>         profile every nth query (0 disables)\n"
            "  \\set failpoint SITE [k] arm fault injection (skip k hits);\n"
            "                          '\\set failpoint off' disarms all\n"
            "  \\show limits            print the budgets in effect\n"
            "  \\show cache             lemma-db occupancy, tiers, hit rates\n"
            "  \\show session           retry/resume/degradation telemetry\n"
            "  \\show recent            flight-recorder tail, one line/query\n"
            "  \\show profile           sampled per-op latency percentiles\n"
            "  quit\n");
      } else if (cmd == "db") {
        CmdDb(session, rest);
      } else if (cmd == "load") {
        CmdLoad(session, rest);
      } else if (cmd == "use") {
        session.use_decomposition = lcdb::StripWhitespace(rest) == "dec";
        session.ResetExtension();
        std::printf("using %s extension\n",
                    session.use_decomposition ? "decomposition"
                                              : "arrangement");
      } else if (cmd == "regions") {
        CmdRegions(session);
      } else if (cmd == "encode") {
        if (session.RebuildExtension()) {
          std::printf("%s\n", lcdb::EncodeDatabase(*session.ext).c_str());
        }
      } else if (cmd == "conn") {
        CmdQuery(session, lcdb::RegionConnQueryText());
      } else if (cmd == "query") {
        CmdQuery(session, rest);
      } else if (cmd == "lint") {
        CmdLint(session, rest);
      } else if (cmd == "explain") {
        CmdExplain(session, rest);
      } else if (cmd == "\\set") {
        CmdSet(session, rest);
      } else if (cmd == "\\show") {
        if (lcdb::StripWhitespace(rest) == "cache") {
          CmdShowCache();
        } else if (lcdb::StripWhitespace(rest) == "session") {
          CmdShowSession(session);
        } else if (lcdb::StripWhitespace(rest) == "recent") {
          CmdShowRecent(session);
        } else if (lcdb::StripWhitespace(rest) == "profile") {
          CmdShowProfile(session);
        } else {
          CmdShowLimits(session);
        }
      } else {
        std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
      }
    } catch (const lcdb::QueryInterrupt& interrupt) {
      std::printf("!! %s\n", interrupt.status().ToString().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
