// lcdbgen — workload generator:  lcdbgen <kind> <param> [out-path]
//
//   lcdbgen comb 4 comb4.lcdb         connected comb with 4 teeth
//   lcdbgen comb-split 4              4 disconnected bars (stdout)
//   lcdbgen staircase 5               staircase of 5 squares
//   lcdbgen grid 3                    3x3 grid of boxes (9 components)
//   lcdbgen slabs 6                   union of 6 random slabs
//   lcdbgen river 4                   Figure 6 river scenario of length 4
//
// Produces db/io.h-format text consumable by lcdbq / lcdbsh and the tests.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/io.h"
#include "db/workloads.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: lcdbgen <comb|comb-split|staircase|grid|slabs|river> "
                 "<size> [out-path]\n");
    return 1;
  }
  const std::string kind = argv[1];
  const long size = std::strtol(argv[2], nullptr, 10);
  if (size < 1 || size > 64) {
    std::fprintf(stderr, "size must be in 1..64\n");
    return 1;
  }
  const size_t n = static_cast<size_t>(size);

  lcdb::ConstraintDatabase db("S", lcdb::DnfFormula::False(1), {"x"});
  if (kind == "comb") {
    db = lcdb::MakeComb(n, /*connected=*/true);
  } else if (kind == "comb-split") {
    db = lcdb::MakeComb(n, /*connected=*/false);
  } else if (kind == "staircase") {
    db = lcdb::MakeStaircase(n);
  } else if (kind == "grid") {
    db = lcdb::MakeBoxGrid(n);
  } else if (kind == "slabs") {
    db = lcdb::MakeRandomSlabs(n, 2, 4, /*seed=*/n * 1000 + 7);
  } else if (kind == "river") {
    db = lcdb::MakeRiverScenario(n, {}, {0}, {n - 1});
  } else {
    std::fprintf(stderr, "unknown workload kind '%s'\n", kind.c_str());
    return 1;
  }

  if (argc >= 4) {
    lcdb::Status s = lcdb::SaveDatabaseToFile(db, argv[3]);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (|B| = %zu)\n", argv[3], db.Size());
  } else {
    std::printf("%s", lcdb::SaveDatabaseToString(db).c_str());
  }
  return 0;
}
