// lcdbq — batch query runner:  lcdbq <database-file> <query> [options]
//
//   ./lcdbq data/intervals.lcdb 'exists x . (S(x) & x > 2)'
//   ./lcdbq data/comb.lcdb --conn
//   ./lcdbq data/triangle.lcdb 'exists y . S(x, y)' --decomposition
//
// Options:
//   --decomposition   use the Section 7 region extension (default: Sec. 3
//                     arrangement)
//   --conn            shorthand for the region connectivity query
//   --stats           print evaluator statistics
//   --explain         print the optimized query plan instead of evaluating
//   --no-optimize     with --explain, print the raw (unoptimized) plan
//   --timeout <ms>    run under a QueryGovernor with a wall-clock deadline;
//                     a tripped deadline is a clean error, not a hang
//
// Exit code: 0 = query evaluated (sentences print true/false), 1 = error
// (including a tripped budget — the message names it).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "engine/governor.h"

int main(int argc, char** argv) {
  std::string db_path;
  std::string query;
  bool use_decomposition = false;
  bool show_stats = false;
  bool explain = false;
  bool optimize = true;
  std::optional<uint64_t> timeout_ms;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--decomposition") == 0) {
      use_decomposition = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--no-optimize") == 0) {
      optimize = false;
    } else if (std::strcmp(argv[i], "--timeout") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--timeout requires a millisecond value\n");
        return 1;
      }
      timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--conn") == 0) {
      query = lcdb::RegionConnQueryText();
    } else if (db_path.empty()) {
      db_path = argv[i];
    } else if (query.empty()) {
      query = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (db_path.empty() || query.empty()) {
    std::fprintf(stderr,
                 "usage: lcdbq <database-file> <query> "
                 "[--decomposition] [--stats] [--explain] [--no-optimize]\n"
                 "       lcdbq <database-file> --conn\n");
    return 1;
  }

  auto db = lcdb::LoadDatabaseFromFile(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto ext = use_decomposition ? lcdb::MakeDecompositionExtension(*db)
                               : lcdb::MakeArrangementExtension(*db);

  auto parsed = lcdb::ParseQuery(query, db->relation_name());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  lcdb::Evaluator::Options options;
  options.optimize = optimize;
  lcdb::Evaluator evaluator(*ext, options);
  // Governed run: the evaluator sees the deadline through the thread-local
  // governor and returns kDeadlineExceeded instead of running away.
  std::unique_ptr<lcdb::QueryGovernor> governor;
  std::unique_ptr<lcdb::ScopedGovernor> scoped;
  if (timeout_ms.has_value()) {
    lcdb::GovernorLimits limits;
    limits.wall_clock_ms = *timeout_ms;
    governor = std::make_unique<lcdb::QueryGovernor>(limits);
    scoped = std::make_unique<lcdb::ScopedGovernor>(*governor);
  }
  if (explain) {
    auto plan = evaluator.Explain(**parsed);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", plan->c_str());
    return 0;
  }
  auto answer = evaluator.Evaluate(**parsed);
  if (!answer.ok()) {
    std::fprintf(stderr, "error: %s\n", answer.status().ToString().c_str());
    if (show_stats) {
      std::fprintf(stderr, "# governor: %s\n",
                   evaluator.stats().governor.ToString().c_str());
    }
    return 1;
  }
  if (answer->free_vars.empty()) {
    std::printf("%s\n", answer->formula.IsEmpty() ? "false" : "true");
  } else {
    std::printf("%s\n", answer->ToString().c_str());
  }
  if (show_stats) {
    const lcdb::Evaluator::Stats& s = evaluator.stats();
    std::fprintf(stderr,
                 "# extension=%s regions=%zu node_evals=%zu bool_evals=%zu "
                 "memo_hits=%zu lfp_iters=%zu qe=%zu\n",
                 ext->kind().c_str(), ext->num_regions(),
                 s.node_evaluations, s.bool_evaluations, s.memo_hits,
                 s.fixpoint_iterations, s.qe_eliminations);
    std::fprintf(stderr, "# kernel: %s\n", s.kernel.ToString().c_str());
    std::fprintf(stderr, "# governor: %s\n", s.governor.ToString().c_str());
  }
  return 0;
}
