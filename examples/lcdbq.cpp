// lcdbq — batch query runner:  lcdbq <database-file> <query> [options]
//
//   ./lcdbq data/intervals.lcdb 'exists x . (S(x) & x > 2)'
//   ./lcdbq data/comb.lcdb --conn
//   ./lcdbq data/triangle.lcdb 'exists y . S(x, y)' --decomposition
//
// Options:
//   --decomposition    use the Section 7 region extension (default: Sec. 3
//                      arrangement)
//   --conn             shorthand for the region connectivity query
//   --stats            print evaluator statistics, including the flat
//                      metrics JSON ("# metrics: {...}")
//   --lint             statically analyze the query instead of evaluating:
//                      parse + typecheck + the analyzer passes (positivity,
//                      range restriction, DTC determinism, vacuous guards,
//                      hygiene), printing LCDB### diagnostics with caret
//                      spans and a summary line
//   --lint=json        same, but print the diagnostics as a JSON array
//                      (code/severity/message/begin/end/fix per entry)
//   --werror           with --lint, promote analyzer warnings to errors:
//                      the report renders them at error severity and the
//                      exit code is 1 when any fired (CI gating)
//   --no-verify        skip the tier-3 static verifiers (plan-IR invariant
//                      checker + bytecode verifier, analysis/plan_verify.h);
//                      ablation knob for benchmarking the <2% verify tax
//   --explain          print the optimized query plan instead of evaluating
//   --explain-analyze  execute the query and print the plan annotated with
//                      per-node measured execution (EXPLAIN ANALYZE)
//   --explain-bytecode print the register-bytecode disassembly of the
//                      optimized plan instead of evaluating
//   --vm               execute on the bytecode VM instead of the plan-tree
//                      walk (answers are byte-identical; requires the
//                      optimizer, so combining it with --no-optimize is an
//                      invalid-argument error, never a silent fallback)
//   --no-optimize      with --explain, print the raw (unoptimized) plan
//   --timeout <ms>     run under a QueryGovernor with a wall-clock deadline;
//                      a tripped deadline is a clean error, not a hang.
//                      Covers extension construction too.
//   --retries <n>      allow n retries through the resilient QuerySession
//                      (engine/session.h): resource trips escalate the
//                      budget and resume from the checkpoint; engine faults
//                      drop a degradation-ladder rung (default 0)
//   --failpoint=SITE[:skip_hits]
//                      arm the named failpoint site (util/failpoint.h) with
//                      a kResourceExhausted injection after skip_hits hits —
//                      the chaos harness's knob, exposed for reproduction
//   --trace=FILE       record a span trace of the whole run (extension
//                      build + query) and write it to FILE as Chrome
//                      trace-event JSON (loadable in Perfetto /
//                      chrome://tracing); --trace FILE also accepted
//   --query-log=FILE   install the query flight recorder (engine/obslog.h)
//                      and write its records to FILE as JSONL, one
//                      schema-stable lcdb.query_record.v1 line per
//                      evaluated query (attempt retries included)
//   --sample-rate=N    enable the continuous profiler: every Nth query is
//                      traced deterministically and its spans fold into the
//                      profile.op.* histograms shown under --stats
//   --postmortem=DIR   on any failed query, serialize a post-mortem bundle
//                      (span tree, metrics, ladder history, flight-recorder
//                      tail) into DIR as lcdb.postmortem.v1 JSON
//
// Exit code: 0 = query evaluated (sentences print true/false), 1 = invalid
// input or engine error, 2 = resource failure (tripped budget, deadline,
// cancel — Status::IsResourceFailure), so scripts can tell "fix the query"
// from "give it more budget". Under --lint, 0 = no error-severity
// diagnostics (warnings and notes are fine), 1 = errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "engine/governor.h"
#include "engine/obslog.h"
#include "engine/session.h"
#include "engine/trace.h"
#include "util/failpoint.h"

namespace {

/// 2 for resource failures, 1 for everything else (see the header comment).
int ExitCodeFor(const lcdb::Status& status) {
  return status.IsResourceFailure() ? 2 : 1;
}

/// Writes the tracer's Chrome trace JSON to `path`; returns false on I/O
/// failure (reported, but the query result still stands).
bool WriteTraceFile(const lcdb::QueryTracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write trace file %s\n", path.c_str());
    return false;
  }
  const std::string json = tracer.ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string query;
  std::string trace_path;
  bool use_decomposition = false;
  bool show_stats = false;
  bool explain = false;
  bool explain_analyze = false;
  bool explain_bytecode = false;
  bool use_vm = false;
  bool lint = false;
  bool lint_json = false;
  bool werror = false;
  bool optimize = true;
  bool verify = true;
  std::optional<uint64_t> timeout_ms;
  size_t retries = 0;
  std::string failpoint_spec;
  std::string query_log_path;
  uint64_t sample_rate = 0;
  std::string postmortem_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--decomposition") == 0) {
      use_decomposition = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--lint=json") == 0) {
      lint = true;
      lint_json = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      explain_analyze = true;
    } else if (std::strcmp(argv[i], "--explain-bytecode") == 0) {
      explain_bytecode = true;
    } else if (std::strcmp(argv[i], "--vm") == 0) {
      use_vm = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--no-optimize") == 0) {
      optimize = false;
    } else if (std::strcmp(argv[i], "--no-verify") == 0) {
      verify = false;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires an output file\n");
        return 1;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--timeout requires a millisecond value\n");
        return 1;
      }
      timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--retries requires a count\n");
        return 1;
      }
      retries = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--failpoint=", 12) == 0) {
      failpoint_spec = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--query-log=", 12) == 0) {
      query_log_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--sample-rate=", 14) == 0) {
      sample_rate = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--postmortem=", 13) == 0) {
      postmortem_dir = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--conn") == 0) {
      query = lcdb::RegionConnQueryText();
    } else if (db_path.empty()) {
      db_path = argv[i];
    } else if (query.empty()) {
      query = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (db_path.empty() || query.empty()) {
    std::fprintf(stderr,
                 "usage: lcdbq <database-file> <query> "
                 "[--decomposition] [--stats] [--lint[=json]] [--werror] "
                 "[--explain] "
                 "[--explain-analyze] [--explain-bytecode] [--vm] "
                 "[--no-optimize] [--no-verify] [--timeout <ms>] "
                 "[--retries <n>] "
                 "[--failpoint=SITE[:skip_hits]] [--trace=out.json] "
                 "[--query-log=out.jsonl] [--sample-rate=N] "
                 "[--postmortem=DIR]\n"
                 "       lcdbq <database-file> --conn\n");
    return 1;
  }

  if (!failpoint_spec.empty()) {
    std::string site = failpoint_spec;
    uint64_t skip_hits = 0;
    const size_t colon = site.rfind(':');
    if (colon != std::string::npos) {
      skip_hits = std::strtoull(site.c_str() + colon + 1, nullptr, 10);
      site.erase(colon);
    }
    // Armed before the extension build so arrangement.split is reachable;
    // injections surface as resource failures (exit code 2).
    lcdb::ArmFailpoint(site, lcdb::StatusCode::kResourceExhausted,
                       "injected failure (--failpoint=" + failpoint_spec +
                           ")",
                       skip_hits);
  }

  auto db = lcdb::LoadDatabaseFromFile(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Lint needs only the schema (relation name and arity), not the regions,
  // so it runs before — and instead of — the extension build. Without an
  // extension the analyzer's region count is unknown; the tuple-space cap
  // warning degrades gracefully (the overflow error still fires).
  if (lint) {
    lcdb::LintReport report = lcdb::LintQueryText(query, *db);
    if (werror) {
      // Promote warnings to errors before rendering so the output severity
      // and the exit code tell the same story.
      for (lcdb::Diagnostic& d : report.diagnostics) {
        if (d.severity == lcdb::DiagSeverity::kWarning) {
          d.severity = lcdb::DiagSeverity::kError;
          --report.stats.warnings;
          ++report.stats.errors;
        }
      }
    }
    if (lint_json) {
      std::printf("%s\n", lcdb::DiagnosticsToJson(report.diagnostics).c_str());
    } else {
      std::printf("%s", lcdb::RenderDiagnostics(report.diagnostics, query)
                            .c_str());
      std::printf("# lint: %s\n", report.stats.ToString().c_str());
    }
    return report.has_errors() ? 1 : 0;
  }

  // Tracer and governor wrap the whole run — extension construction
  // included, so its budget trips are clean errors and its build span is
  // the first in the trace.
  std::unique_ptr<lcdb::QueryTracer> tracer;
  std::unique_ptr<lcdb::ScopedTracer> scoped_tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<lcdb::QueryTracer>();
    scoped_tracer = std::make_unique<lcdb::ScopedTracer>(*tracer);
  }
  std::unique_ptr<lcdb::QueryGovernor> governor;
  std::unique_ptr<lcdb::ScopedGovernor> scoped;
  if (timeout_ms.has_value()) {
    lcdb::GovernorLimits limits;
    limits.wall_clock_ms = *timeout_ms;
    governor = std::make_unique<lcdb::QueryGovernor>(limits);
    scoped = std::make_unique<lcdb::ScopedGovernor>(*governor);
  }
  // The flight recorder covers every evaluation of the run — retry
  // attempts land as individual records with the session's annotation on
  // the last one.
  std::unique_ptr<lcdb::QueryFlightRecorder> recorder;
  std::unique_ptr<lcdb::ScopedFlightRecorder> scoped_recorder;
  if (!query_log_path.empty()) {
    recorder = std::make_unique<lcdb::QueryFlightRecorder>();
    scoped_recorder = std::make_unique<lcdb::ScopedFlightRecorder>(*recorder);
  }
  auto write_trace = [&] {
    if (tracer != nullptr) WriteTraceFile(*tracer, trace_path);
    if (recorder != nullptr) {
      std::FILE* f = std::fopen(query_log_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write query log %s\n",
                     query_log_path.c_str());
        return;
      }
      const std::string jsonl = recorder->ToJsonl();
      if (std::fwrite(jsonl.data(), 1, jsonl.size(), f) != jsonl.size()) {
        std::fprintf(stderr, "error: short write to %s\n",
                     query_log_path.c_str());
      }
      std::fclose(f);
    }
  };

  auto built = use_decomposition ? lcdb::BuildDecompositionExtension(*db)
                                 : lcdb::BuildArrangementExtension(*db);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    write_trace();
    return ExitCodeFor(built.status());
  }
  std::unique_ptr<lcdb::RegionExtension> ext = std::move(built).value();

  auto parsed = lcdb::ParseQuery(query, db->relation_name());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  lcdb::Evaluator::Options options;
  options.optimize = optimize;
  options.use_bytecode = use_vm;
  options.verify = verify;
  lcdb::Evaluator evaluator(*ext, options);
  evaluator.AttachSource(query);  // carets in analyzer rejections
  if (explain || explain_analyze || explain_bytecode) {
    auto plan = explain_bytecode ? evaluator.ExplainBytecode(**parsed)
                : explain_analyze ? evaluator.ExplainAnalyze(**parsed)
                                  : evaluator.Explain(**parsed);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
      write_trace();
      return ExitCodeFor(plan.status());
    }
    std::printf("%s", plan->c_str());
    write_trace();
    return 0;
  }

  // Evaluation routes through the resilient session: one attempt by
  // default, escalating retries with checkpoint/resume and the degradation
  // ladder under --retries. Its governor carries the --timeout budget per
  // attempt (the outer governor above still covers the extension build).
  lcdb::SessionOptions session_options;
  session_options.eval = options;
  session_options.max_retries = retries;
  session_options.profile.sample_every = sample_rate;
  session_options.postmortem_dir = postmortem_dir;
  if (timeout_ms.has_value()) {
    session_options.limits.wall_clock_ms = *timeout_ms;
  }
  lcdb::QuerySession session(*ext, session_options);
  auto answer = session.Evaluate(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "error: %s\n", answer.status().ToString().c_str());
    if (!session.last_postmortem_path().empty()) {
      std::fprintf(stderr, "# postmortem: %s\n",
                   session.last_postmortem_path().c_str());
    }
    if (show_stats) {
      std::fprintf(stderr, "# session: %s\n",
                   session.stats().ToString().c_str());
      std::fprintf(stderr, "# metrics: %s\n",
                   session.Metrics().ToJson().c_str());
    }
    write_trace();
    return ExitCodeFor(answer.status());
  }
  if (answer->free_vars.empty()) {
    std::printf("%s\n", answer->formula.IsEmpty() ? "false" : "true");
  } else {
    std::printf("%s\n", answer->ToString().c_str());
  }
  if (show_stats) {
    const lcdb::MetricsSnapshot metrics = session.Metrics();
    auto metric = [&](const char* name) -> uint64_t {
      auto it = metrics.values.find(name);
      return it == metrics.values.end() ? 0 : it->second;
    };
    std::fprintf(stderr,
                 "# extension=%s regions=%zu node_evals=%" PRIu64
                 " bool_evals=%" PRIu64 " memo_hits=%" PRIu64
                 " lfp_iters=%" PRIu64 " qe=%" PRIu64 "\n",
                 ext->kind().c_str(), ext->num_regions(),
                 metric("evaluator.node_evaluations"),
                 metric("evaluator.bool_evaluations"),
                 metric("evaluator.memo_hits"),
                 metric("evaluator.fixpoint_iterations"),
                 metric("evaluator.qe_eliminations"));
    std::fprintf(stderr, "# session: %s\n",
                 session.stats().ToString().c_str());
    // The same flat namespace the bench harness and EXPLAIN ANALYZE read,
    // now including the session.* resilience family.
    std::fprintf(stderr, "# metrics: %s\n", metrics.ToJson().c_str());
  }
  write_trace();
  return 0;
}
