// Spatial connectivity — the paper's first Section 5 example — evaluated
// three ways on generated workloads:
//   1. the literal point-quantified Conn query (RegLFP),
//   2. its region-level form (RegLFP without element quantifiers),
//   3. the hand-written geometric baseline (union-find over the adjacency
//      graph; the comparator lcdb uses in place of the abstractly-specified
//      Grumbach-Kuper language [11] — see DESIGN.md).
// All three must agree; the run prints what each decides and how long the
// generic evaluator took relative to the baseline.

#include <chrono>
#include <cstdio>

#include "core/evaluator.h"
#include "core/queries.h"
#include "db/geometric_baselines.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Run(const char* name, const lcdb::ConstraintDatabase& db,
         bool run_literal_conn) {
  auto ext = lcdb::MakeArrangementExtension(db);

  auto t0 = std::chrono::steady_clock::now();
  bool baseline = lcdb::SpatialConnectivityBaseline(*ext);
  double baseline_ms = MillisSince(t0);

  t0 = std::chrono::steady_clock::now();
  auto region_form =
      lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnQueryText());
  double region_ms = MillisSince(t0);
  if (!region_form.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 region_form.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%-28s regions=%4zu  baseline=%s (%.1f ms)  RegLFP=%s (%.1f ms)",
              name, ext->num_regions(), baseline ? "conn" : "disc",
              baseline_ms, *region_form ? "conn" : "disc", region_ms);

  if (run_literal_conn) {
    t0 = std::chrono::steady_clock::now();
    auto literal = lcdb::EvaluateSentenceText(*ext, lcdb::ConnQueryText(2));
    double literal_ms = MillisSince(t0);
    if (!literal.ok()) {
      std::fprintf(stderr, "error: %s\n", literal.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("  literal-Conn=%s (%.1f ms)",
                *literal ? "conn" : "disc", literal_ms);
    if (*literal != baseline) std::printf("  *** MISMATCH ***");
  }
  if (*region_form != baseline) std::printf("  *** MISMATCH ***");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Connectivity: generic RegLFP evaluator vs geometric "
              "baseline\n\n");
  Run("one box", lcdb::MakeComb(1, false), /*run_literal_conn=*/true);
  Run("two separate bars", lcdb::MakeComb(2, false), true);
  Run("two bars + spine", lcdb::MakeComb(2, true), false);
  Run("three bars (disconnected)", lcdb::MakeComb(3, false), false);
  Run("three bars + spine", lcdb::MakeComb(3, true), false);
  Run("staircase of 4 squares", lcdb::MakeStaircase(4), false);
  Run("2x2 grid of boxes", lcdb::MakeBoxGrid(2), false);
  std::printf("\nThe literal Conn query quantifies over points of S and pays "
              "for the\nsymbolic quantifier elimination; the region form and "
              "the baseline agree\nwith it on every instance.\n");
  return 0;
}
