// Quickstart: build a linear constraint database from text, inspect its
// arrangement-based region extension, and run RegFO / RegLFP queries.
//
// This walks through the paper's pipeline end to end:
//   representation (Section 2) -> arrangement A(S) (Section 3) ->
//   two-sorted region extension (Section 4) -> queries (Sections 4-5).

#include <cstdio>
#include <string>

#include "core/evaluator.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"

namespace {

void Fail(const lcdb::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // A database is a relation with a quantifier-free DNF representation.
  const char* kDatabaseText =
      "# the paper's running example shape: a triangle-like relation\n"
      "relation S(x, y)\n"
      "formula (x >= 0 & y >= 0 & x + y <= 4) | (x >= 3 & y >= 0 & "
      "x <= 5 & y <= 2)\n";
  auto db = lcdb::LoadDatabaseFromString(kDatabaseText);
  if (!db.ok()) Fail(db.status());
  std::printf("database: %s\n", db->ToString().c_str());
  std::printf("representation size |B| = %zu\n\n", db->Size());

  // The region extension B^Reg: the finite second sort the fixed points
  // range over.
  auto ext = lcdb::MakeArrangementExtension(*db);
  std::printf("regions (faces of the arrangement A(S)): %zu\n",
              ext->num_regions());
  size_t in_s = 0;
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    if (ext->RegionSubsetOfS(r)) ++in_s;
  }
  std::printf("regions contained in S: %zu\n\n", in_s);

  // A RegFO sentence: is S nonempty above the line x + y = 4?
  auto above = lcdb::EvaluateSentenceText(
      *ext, "exists x y . (S(x, y) & x + y > 4)");
  if (!above.ok()) Fail(above.status());
  std::printf("exists point of S above x+y=4:  %s\n",
              *above ? "true" : "false");

  // A non-boolean RegFO query: the shadow of S on the x axis. The answer is
  // again a quantifier-free formula (closure, Section 2).
  auto shadow = lcdb::EvaluateQueryText(*ext, "exists y . S(x, y)");
  if (!shadow.ok()) Fail(shadow.status());
  std::printf("projection onto x:  %s\n", shadow->ToString().c_str());

  // The paper's RegLFP connectivity query (Section 5), in its region-level
  // form (equivalent on arrangements; examples/connectivity.cpp also runs
  // the literal point-quantified version).
  auto conn = lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnQueryText());
  if (!conn.ok()) Fail(conn.status());
  std::printf("S connected (RegLFP connectivity):  %s\n",
              *conn ? "true" : "false");
  std::printf("\nquery used:\n  %s\n", lcdb::RegionConnQueryText().c_str());
  return 0;
}
